package server

import (
	"fmt"

	"dmamem/internal/disk"
	"dmamem/internal/memsys"
	"dmamem/internal/san"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// StorageConfig parameterizes the storage-server workload model that
// synthesizes our OLTP-St trace. The request path follows Figure 1:
// a client read that hits the buffer cache triggers one network DMA
// out of memory; a miss triggers a disk DMA into memory followed by
// the network DMA; a client write triggers a network DMA into memory
// and a write-through disk DMA out of it.
type StorageConfig struct {
	Seed     uint64
	Duration sim.Duration
	// RequestRatePerMs is the Poisson client request arrival rate.
	RequestRatePerMs float64
	// ReadFraction of requests are reads.
	ReadFraction float64
	// Objects is the dataset size in objects; object sizes come from
	// Sizes (stable per object). The dataset normally exceeds the
	// cache, producing the miss traffic that drives the disk.
	Objects int
	// Alpha is the Zipf skew of object popularity. The default is
	// calibrated so the page-popularity CDF of the resulting memory
	// trace matches Figure 4 (~20% of pages get ~60% of accesses).
	Alpha float64
	// Sizes is the object size mixture; nil means synth.DefaultSizes.
	Sizes []synth.SizeClass
	// CacheFrames is the buffer cache capacity in page frames.
	CacheFrames int
	PageBytes   int
	Buses       int
	// CPUTime models request parsing and index lookup (meta-data work;
	// the paper keeps meta-data in a separate device).
	CPUTime sim.Duration
	// BusBandwidth is the I/O bus rate used for nominal DMA transfer
	// durations on the response path.
	BusBandwidth float64

	Disk        disk.Config
	DiskCount   int
	StripeBytes int64
	SAN         san.Config
}

// DefaultStorage returns the OLTP-St calibration: 45 client
// requests/ms so the trace carries ~45 network transfers/ms, with the
// cache:dataset ratio tuned so disk DMAs run at roughly the paper's
// 16.7/ms.
func DefaultStorage() StorageConfig {
	g := memsys.Default()
	sanCfg := san.DefaultConfig()
	// A storage server pushing ~1 GB/s of payload has several FC ports;
	// model the aggregate fabric so the SAN is not the bottleneck.
	sanCfg.Bandwidth = 2e9
	return StorageConfig{
		Seed:             7,
		Duration:         100 * sim.Millisecond,
		RequestRatePerMs: 45,
		ReadFraction:     0.75,
		Objects:          500000, // ~4 GB dataset behind a 1 GB cache
		Alpha:            1.0,
		CacheFrames:      g.TotalPages(),
		PageBytes:        g.PageBytes,
		Buses:            3,
		CPUTime:          50 * sim.Microsecond, // array controller firmware per request
		BusBandwidth:     1.064e9,
		Disk:             disk.DefaultConfig(),
		DiskCount:        80, // sized for ~85% backend utilization: realistic multi-ms miss latency
		StripeBytes:      64 << 10,
		SAN:              sanCfg,
	}
}

func (c StorageConfig) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("server: nonpositive duration %v", c.Duration)
	case c.RequestRatePerMs <= 0:
		return fmt.Errorf("server: nonpositive request rate %g", c.RequestRatePerMs)
	case c.ReadFraction < 0 || c.ReadFraction > 1:
		return fmt.Errorf("server: read fraction %g outside [0,1]", c.ReadFraction)
	case c.Objects <= 0:
		return fmt.Errorf("server: %d objects", c.Objects)
	case c.CacheFrames <= 0:
		return fmt.Errorf("server: %d cache frames", c.CacheFrames)
	case c.PageBytes <= 0:
		return fmt.Errorf("server: page size %d", c.PageBytes)
	case c.Buses <= 0 || c.Buses > 255:
		return fmt.Errorf("server: %d buses", c.Buses)
	case c.BusBandwidth <= 0:
		return fmt.Errorf("server: bus bandwidth %g", c.BusBandwidth)
	case c.DiskCount <= 0:
		return fmt.Errorf("server: %d disks", c.DiskCount)
	}
	return nil
}

// StorageResult is the generated trace plus workload-level statistics.
type StorageResult struct {
	Trace *trace.Trace
	// Requests served, and the cache behaviour behind them.
	Requests  int64
	HitRatio  float64
	MeanResp  sim.Duration
	MeanDisk  sim.Duration // mean disk access time on the miss path
	DiskReads int64
}

// objectPages returns the stable size of an object, drawn from the
// mixture by hashing the ID.
func objectPages(id ObjectID, sizes []synth.SizeClass, totalWeight float64) int {
	// splitmix64 hash of the id for a stable uniform draw.
	x := uint64(id) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53) * totalWeight
	acc := 0.0
	for _, c := range sizes {
		acc += c.Weight
		if u <= acc {
			return c.Pages
		}
	}
	return sizes[len(sizes)-1].Pages
}

// GenerateStorage runs the storage-server model and returns the memory
// trace it induces.
func GenerateStorage(c StorageConfig) (*StorageResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Sizes == nil {
		c.Sizes = synth.DefaultSizes()
	}
	var totalWeight float64
	maxPages := 0
	for _, s := range c.Sizes {
		totalWeight += s.Weight
		if s.Pages > maxPages {
			maxPages = s.Pages
		}
	}

	rng := synth.NewRNG(c.Seed)
	zipf := synth.NewZipf(c.Objects, c.Alpha)
	perm := rng.Perm(c.Objects) // scatter popularity over object IDs

	cache, err := NewBufferCache(c.CacheFrames)
	if err != nil {
		return nil, err
	}
	array, err := disk.NewArray(c.DiskCount, c.Disk, c.StripeBytes)
	if err != nil {
		return nil, err
	}
	fabric, err := san.NewFabric(c.SAN)
	if err != nil {
		return nil, err
	}

	// Pre-warm the cache with the most popular objects, the steady
	// state an LRU cache converges to under a skewed reference stream.
	// Without this, a finite trace is dominated by cold misses and the
	// frame-popularity distribution degenerates to uniform.
	used := 0
	for rank := 0; rank < c.Objects; rank++ {
		id := ObjectID(perm[rank])
		pages := objectPages(id, c.Sizes, totalWeight)
		if used+pages > c.CacheFrames {
			break
		}
		cache.Insert(id, pages)
		used += pages
	}

	res := &StorageResult{Trace: &trace.Trace{Name: "OLTP-St"}}
	tr := res.Trace
	meanGap := 1e-3 / c.RequestRatePerMs

	dmaDur := func(pages int) sim.Duration {
		return sim.FromSeconds(float64(pages*c.PageBytes) / c.BusBandwidth)
	}
	emit := func(at sim.Time, kind trace.Kind, src trace.Source, start memsys.PageID, pages int) {
		tr.Records = append(tr.Records, trace.Record{
			Time: at, Kind: kind, Source: src,
			Bus: uint8(rng.Intn(c.Buses)), Pages: uint16(pages), Page: start,
		})
	}

	var (
		now          sim.Time
		respSum      sim.Duration
		transfersSum int64
		diskSum      sim.Duration
	)
	for {
		now = now.Add(sim.FromSeconds(rng.Exp(meanGap)))
		if now > sim.Time(c.Duration) {
			break
		}
		obj := ObjectID(perm[zipf.Sample(rng)])
		pages := objectPages(obj, c.Sizes, totalWeight)
		bytes := int64(pages) * int64(c.PageBytes)
		diskOffset := int64(obj) * int64(maxPages) * int64(c.PageBytes)
		res.Requests++

		if rng.Float64() < c.ReadFraction {
			arrive := fabric.RequestArrival(now)
			ready := arrive.Add(c.CPUTime)
			start, _, ok := cache.Lookup(obj)
			var sendAt sim.Time
			if ok {
				sendAt = ready
				transfersSum++
			} else {
				diskDone := array.Access(ready, diskOffset, bytes)
				diskSum += diskDone.Sub(ready)
				res.DiskReads++
				start = cache.Insert(obj, pages)
				emit(diskDone, trace.DMAWrite, trace.SrcDisk, start, pages)
				sendAt = diskDone.Add(dmaDur(pages))
				transfersSum += 2
			}
			emit(sendAt, trace.DMARead, trace.SrcNetwork, start, pages)
			done := fabric.Reply(sendAt.Add(dmaDur(pages)), bytes)
			respSum += done.Sub(now)
		} else {
			// Write: payload travels with the request; NIC DMAs it into
			// memory, then write-through to disk.
			arrive := fabric.WritePayloadArrival(now, bytes)
			ready := arrive.Add(c.CPUTime)
			start, _, ok := cache.Lookup(obj)
			if !ok {
				start = cache.Insert(obj, pages)
			}
			emit(ready, trace.DMAWrite, trace.SrcNetwork, start, pages)
			memDone := ready.Add(dmaDur(pages))
			emit(memDone, trace.DMARead, trace.SrcDisk, start, pages)
			array.Access(memDone, diskOffset, bytes) // timing only; write-through is async
			done := fabric.Reply(memDone, 0)         // ack after memory commit
			respSum += done.Sub(now)
			transfersSum += 2
		}
	}
	tr.SortByTime()
	// Records on long miss paths can land past the configured horizon;
	// drop them so trace duration and rates reflect the configuration.
	tr.Records = tr.Clip(sim.Time(c.Duration)).Records
	if res.Requests > 0 {
		res.MeanResp = sim.Duration(int64(respSum) / res.Requests)
		tr.Meta.MeanClientResponse = res.MeanResp
		tr.Meta.TransfersPerClientRequest = float64(transfersSum) / float64(res.Requests)
	}
	if res.DiskReads > 0 {
		res.MeanDisk = sim.Duration(int64(diskSum) / res.DiskReads)
	}
	res.HitRatio = cache.HitRatio()
	return res, nil
}
