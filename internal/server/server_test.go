package server

import (
	"math"
	"testing"
	"testing/quick"

	"dmamem/internal/memsys"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

func TestCacheBasics(t *testing.T) {
	c, err := NewBufferCache(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Lookup(1); ok {
		t.Fatal("empty cache hit")
	}
	start := c.Insert(1, 4)
	if start != 0 {
		t.Fatalf("first insert at frame %d", start)
	}
	s, p, ok := c.Lookup(1)
	if !ok || s != 0 || p != 4 {
		t.Fatalf("lookup: %v %v %v", s, p, ok)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %g", c.HitRatio())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, _ := NewBufferCache(8)
	c.Insert(1, 4)
	c.Insert(2, 4)
	// Touch 1 so 2 becomes LRU.
	c.Lookup(1)
	c.Insert(3, 4) // must evict 2
	if _, _, ok := c.Lookup(2); ok {
		t.Fatal("LRU object survived")
	}
	if _, _, ok := c.Lookup(1); !ok {
		t.Fatal("MRU object evicted")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheMultiEviction(t *testing.T) {
	// Inserting a large object must evict as many small ones as needed
	// and place it in a contiguous run.
	c, _ := NewBufferCache(8)
	for id := ObjectID(0); id < 8; id++ {
		c.Insert(id, 1)
	}
	start := c.Insert(100, 6)
	if start < 0 || int(start)+6 > 8 {
		t.Fatalf("run out of range: %d", start)
	}
	if c.Len() > 3 {
		t.Fatalf("len = %d after big insert", c.Len())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRemove(t *testing.T) {
	c, _ := NewBufferCache(8)
	c.Insert(1, 2)
	if !c.Remove(1) {
		t.Fatal("remove failed")
	}
	if c.Remove(1) {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCachePanics(t *testing.T) {
	c, _ := NewBufferCache(4)
	c.Insert(1, 2)
	for _, f := range []func(){
		func() { c.Insert(1, 1) }, // already resident
		func() { c.Insert(2, 5) }, // larger than cache
		func() { c.Insert(3, 0) }, // zero pages
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
	if _, err := NewBufferCache(0); err == nil {
		t.Error("zero-frame cache accepted")
	}
}

// Property: after any sequence of inserts/lookups/removes the cache
// invariants hold and no two objects overlap.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c, err := NewBufferCache(64)
		if err != nil {
			return false
		}
		for _, op := range ops {
			id := ObjectID(op % 40)
			switch (op >> 8) % 3 {
			case 0:
				if _, _, ok := c.Lookup(id); !ok {
					c.Insert(id, 1+int(op%7))
				}
			case 1:
				c.Lookup(id)
			case 2:
				c.Remove(id)
			}
			if c.checkInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func shortStorage() StorageConfig {
	c := DefaultStorage()
	c.Duration = 20 * sim.Millisecond
	return c
}

func TestGenerateStorageShape(t *testing.T) {
	res, err := GenerateStorage(shortStorage())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	// Network transfers track the request rate: reads emit one net DMA,
	// writes one net DMA; expect ~45/ms.
	net := float64(s.NetTransfers) / (tr.Duration().Seconds() * 1e3)
	if net < 35 || net > 55 {
		t.Fatalf("net transfers = %.1f/ms, want ~45", net)
	}
	// Disk transfers come from read misses and write-throughs; the
	// calibration targets the OLTP-St ballpark (16.7/ms +- 50%).
	diskRate := float64(s.DiskTransfers) / (tr.Duration().Seconds() * 1e3)
	if diskRate < 8 || diskRate > 30 {
		t.Fatalf("disk transfers = %.1f/ms, want ~17", diskRate)
	}
	if s.ProcAccesses != 0 {
		t.Fatal("storage trace should carry no processor accesses")
	}
	// Every record stays within the cache frame range.
	for _, r := range tr.Records {
		if int(r.Page)+int(r.Pages) > DefaultStorage().CacheFrames {
			t.Fatalf("record outside memory: %+v", r)
		}
	}
	if res.MeanResp <= 0 || tr.Meta.MeanClientResponse != res.MeanResp {
		t.Fatalf("mean response not recorded: %v", res.MeanResp)
	}
	if tr.Meta.TransfersPerClientRequest < 1 || tr.Meta.TransfersPerClientRequest > 2 {
		t.Fatalf("transfers per request = %g", tr.Meta.TransfersPerClientRequest)
	}
	if res.HitRatio <= 0 || res.HitRatio >= 1 {
		t.Fatalf("hit ratio = %g", res.HitRatio)
	}
}

func TestGenerateStoragePopularitySkew(t *testing.T) {
	// The Figure 4 shape: top 20% of pages carry far more than 20% of
	// accesses (paper: ~60%).
	res, err := GenerateStorage(shortStorage())
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(res.Trace)
	share := s.AccessShareOfTopPages(0.2)
	if share < 0.4 || share > 0.95 {
		t.Fatalf("top-20%% share = %g, want strong skew", share)
	}
}

func TestGenerateStorageDeterminism(t *testing.T) {
	cfg := shortStorage()
	cfg.Duration = 5 * sim.Millisecond
	a, err := GenerateStorage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStorage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Records) != len(b.Trace.Records) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Trace.Records {
		if a.Trace.Records[i] != b.Trace.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateStorageMissPathOrdering(t *testing.T) {
	// With a tiny cache every read misses: each net DMA of an object
	// must be preceded by a disk DMA for the same frames.
	cfg := shortStorage()
	cfg.Duration = 20 * sim.Millisecond
	cfg.CacheFrames = 64
	cfg.Objects = 10000
	cfg.ReadFraction = 1.0
	res, err := GenerateStorage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio > 0.4 {
		t.Fatalf("tiny cache should miss nearly always: hit ratio %g", res.HitRatio)
	}
	s := trace.Analyze(res.Trace)
	// Most network DMAs ride on the miss path, so disk DMAs should be
	// comparable in number (some trail past the horizon and are
	// clipped).
	if s.DiskTransfers < s.NetTransfers/2 {
		t.Fatalf("miss path under-represented: disk=%d net=%d",
			s.DiskTransfers, s.NetTransfers)
	}
	if res.MeanDisk < 500*sim.Microsecond {
		t.Fatalf("mean disk latency %v implausibly small", res.MeanDisk)
	}
}

func TestGenerateStorageValidation(t *testing.T) {
	bad := DefaultStorage()
	bad.RequestRatePerMs = 0
	if _, err := GenerateStorage(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultStorage()
	bad.ReadFraction = 2
	if _, err := GenerateStorage(bad); err == nil {
		t.Error("bad read fraction accepted")
	}
	bad = DefaultStorage()
	bad.DiskCount = 0
	if _, err := GenerateStorage(bad); err == nil {
		t.Error("zero disks accepted")
	}
}

func TestObjectPagesStable(t *testing.T) {
	sizes := synth.DefaultSizes()
	var w float64
	for _, s := range sizes {
		w += s.Weight
	}
	for id := ObjectID(0); id < 100; id++ {
		a := objectPages(id, sizes, w)
		b := objectPages(id, sizes, w)
		if a != b {
			t.Fatalf("object %d size not stable", id)
		}
		if a < 1 || a > 8 {
			t.Fatalf("object %d size %d outside mixture", id, a)
		}
	}
}

func shortDatabase() DatabaseConfig {
	c := DefaultDatabase()
	c.Duration = 10 * sim.Millisecond
	return c
}

func TestGenerateDatabaseShape(t *testing.T) {
	res, err := GenerateDatabase(shortDatabase())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.Analyze(tr)
	if s.DiskTransfers != 0 {
		t.Fatal("database trace should carry no disk DMAs")
	}
	rate := s.TransfersPerMs()
	if rate < 80 || rate > 120 {
		t.Fatalf("transfer rate = %.1f/ms, want ~100", rate)
	}
	// ~233 processor accesses per transfer.
	ppt := s.ProcAccessesPerTransfer()
	if ppt < 150 || ppt > 320 {
		t.Fatalf("proc per transfer = %.0f, want ~233", ppt)
	}
	if res.MeanResp <= 0 {
		t.Fatal("no response time recorded")
	}
}

func TestGenerateDatabaseDatasetMustFit(t *testing.T) {
	cfg := shortDatabase()
	cfg.Frames = 100 // far too small
	if _, err := GenerateDatabase(cfg); err == nil {
		t.Fatal("oversized dataset accepted")
	}
}

func TestGenerateDatabaseValidation(t *testing.T) {
	bad := DefaultDatabase()
	bad.QueryRatePerMs = 0
	if _, err := GenerateDatabase(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultDatabase()
	bad.ProcAccessGap = 0
	if _, err := GenerateDatabase(bad); err == nil {
		t.Error("zero gap accepted")
	}
}

func TestGenerateDatabasePagesInRange(t *testing.T) {
	res, err := GenerateDatabase(shortDatabase())
	if err != nil {
		t.Fatal(err)
	}
	max := memsys.PageID(DefaultDatabase().Frames)
	for _, r := range res.Trace.Records {
		if r.Page < 0 || r.Page >= max {
			t.Fatalf("page %d out of range", r.Page)
		}
	}
}

func TestStorageMeanRespPlausible(t *testing.T) {
	res, err := GenerateStorage(shortStorage())
	if err != nil {
		t.Fatal(err)
	}
	// Response times should be dominated by SAN + occasional disk:
	// between 50 us and 50 ms on average.
	if res.MeanResp < 50*sim.Microsecond || res.MeanResp > 50*sim.Millisecond {
		t.Fatalf("mean response = %v", res.MeanResp)
	}
	if math.IsNaN(float64(res.MeanResp)) {
		t.Fatal("NaN response")
	}
}
