package server

import (
	"fmt"

	"dmamem/internal/disk"
	"dmamem/internal/memsys"
	"dmamem/internal/san"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// DSSConfig parameterizes the decision-support (TPC-H style) workload
// the paper lists as future work: a database server running large
// analytical scans. Unlike OLTP, the memory traffic is dominated by
// long sequential runs of disk DMA transfers streaming table segments
// into memory, with modest result traffic going out — a very different
// alignment profile (few, long, predictable streams) from OLTP's many
// short skewed ones.
type DSSConfig struct {
	Seed     uint64
	Duration sim.Duration
	// QueryRatePerMs is the analytical query arrival rate. DSS queries
	// are rare but enormous.
	QueryRatePerMs float64
	// ScanPages is the mean number of pages one query scans; the scan
	// is issued as a run of consecutive multi-page transfers.
	ScanPages int
	// TransferPages is the size of each scan transfer (a read-ahead
	// unit; DSS systems stream in large chunks).
	TransferPages int
	// ResultFraction of scanned bytes leaves as network DMA results
	// (aggregations return far less than they read).
	ResultFraction float64
	// Tables is the number of distinct table regions scans start from.
	Tables int
	// Frames of memory available as scan buffers.
	Frames    int
	PageBytes int
	Buses     int
	// BusBandwidth for nominal transfer durations on the reply path.
	BusBandwidth float64

	Disk        disk.Config
	DiskCount   int
	StripeBytes int64
	SAN         san.Config
}

// DefaultDSS returns a TPC-H-flavored configuration: one multi-GB scan
// query every few milliseconds, streamed in 64 KB read-ahead units.
func DefaultDSS() DSSConfig {
	g := memsys.Default()
	sanCfg := san.DefaultConfig()
	sanCfg.Bandwidth = 2e9
	return DSSConfig{
		Seed:           13,
		Duration:       100 * sim.Millisecond,
		QueryRatePerMs: 0.15, // one query per ~7 ms
		ScanPages:      1024,
		TransferPages:  8, // 64 KB read-ahead units
		ResultFraction: 0.02,
		Tables:         64,
		Frames:         g.TotalPages(),
		PageBytes:      g.PageBytes,
		Buses:          3,
		BusBandwidth:   1.064e9,
		Disk:           disk.DefaultConfig(),
		DiskCount:      80,
		StripeBytes:    256 << 10,
		SAN:            sanCfg,
	}
}

func (c DSSConfig) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("server: nonpositive duration %v", c.Duration)
	case c.QueryRatePerMs <= 0:
		return fmt.Errorf("server: nonpositive query rate %g", c.QueryRatePerMs)
	case c.ScanPages <= 0 || c.TransferPages <= 0:
		return fmt.Errorf("server: scan %d / transfer %d pages", c.ScanPages, c.TransferPages)
	case c.TransferPages > c.ScanPages:
		return fmt.Errorf("server: transfer unit larger than scan")
	case c.ResultFraction < 0 || c.ResultFraction > 1:
		return fmt.Errorf("server: result fraction %g", c.ResultFraction)
	case c.Tables <= 0:
		return fmt.Errorf("server: %d tables", c.Tables)
	case c.Frames < c.ScanPages:
		return fmt.Errorf("server: %d frames cannot hold one scan", c.Frames)
	case c.Buses <= 0 || c.Buses > 255:
		return fmt.Errorf("server: %d buses", c.Buses)
	case c.BusBandwidth <= 0:
		return fmt.Errorf("server: bus bandwidth %g", c.BusBandwidth)
	case c.DiskCount <= 0:
		return fmt.Errorf("server: %d disks", c.DiskCount)
	}
	return nil
}

// DSSResult is the generated trace plus workload statistics.
type DSSResult struct {
	Trace    *trace.Trace
	Queries  int64
	MeanResp sim.Duration
}

// GenerateDSS runs the decision-support model. Each query streams its
// scan from the disk array into a circular region of scan buffers
// (one disk DMA per read-ahead unit, paced by the array) and emits a
// small result transfer at the end.
func GenerateDSS(c DSSConfig) (*DSSResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	rng := synth.NewRNG(c.Seed)
	array, err := disk.NewArray(c.DiskCount, c.Disk, c.StripeBytes)
	if err != nil {
		return nil, err
	}
	fabric, err := san.NewFabric(c.SAN)
	if err != nil {
		return nil, err
	}

	res := &DSSResult{Trace: &trace.Trace{Name: "DSS"}}
	tr := res.Trace
	meanGap := 1e-3 / c.QueryRatePerMs
	unitBytes := int64(c.TransferPages) * int64(c.PageBytes)

	// Scan buffers: each query claims a contiguous window of frames,
	// advancing circularly (DSS buffer managers recycle scan memory
	// rather than caching it).
	nextFrame := 0
	claim := func(pages int) memsys.PageID {
		if nextFrame+pages > c.Frames {
			nextFrame = 0
		}
		start := nextFrame
		nextFrame += pages
		return memsys.PageID(start)
	}

	var now sim.Time
	var respSum sim.Duration
	for {
		now = now.Add(sim.FromSeconds(rng.Exp(meanGap)))
		if now > sim.Time(c.Duration) {
			break
		}
		res.Queries++
		arrive := fabric.RequestArrival(now)

		// The scan length varies around the mean; at least one unit.
		units := int(rng.Exp(float64(c.ScanPages) / float64(c.TransferPages)))
		if units < 1 {
			units = 1
		}
		table := rng.Intn(c.Tables)
		tableOffset := int64(table) * int64(c.ScanPages) * int64(c.PageBytes) * 4
		frames := claim(units * c.TransferPages)

		// Stream the scan: the read-ahead engine issues every unit up
		// front, so the striped array streams them in parallel (each
		// member disk serves its units sequentially through its FIFO);
		// each completed unit is one disk DMA into memory.
		var lastDone sim.Time
		for u := 0; u < units; u++ {
			done := array.Access(arrive, tableOffset+int64(u)*unitBytes, unitBytes)
			start := frames + memsys.PageID(u*c.TransferPages)
			tr.Records = append(tr.Records, trace.Record{
				Time: done, Kind: trace.DMAWrite, Source: trace.SrcDisk,
				Bus:   uint8(rng.Intn(c.Buses)),
				Pages: uint16(c.TransferPages), Page: start,
			})
			if done > lastDone {
				lastDone = done
			}
		}

		// The aggregated result leaves over the network.
		resultBytes := int64(float64(units) * float64(unitBytes) * c.ResultFraction)
		resultPages := int(resultBytes / int64(c.PageBytes))
		if resultPages < 1 {
			resultPages = 1
		}
		if resultPages > 8 {
			resultPages = 8
		}
		tr.Records = append(tr.Records, trace.Record{
			Time: lastDone, Kind: trace.DMARead, Source: trace.SrcNetwork,
			Bus:   uint8(rng.Intn(c.Buses)),
			Pages: uint16(resultPages), Page: frames,
		})
		done := fabric.Reply(lastDone, resultBytes)
		respSum += done.Sub(now)
	}
	tr.SortByTime()
	tr.Records = tr.Clip(sim.Time(c.Duration)).Records
	if res.Queries > 0 {
		res.MeanResp = sim.Duration(int64(respSum) / res.Queries)
		tr.Meta.MeanClientResponse = res.MeanResp
		tr.Meta.TransfersPerClientRequest = float64(c.ScanPages / c.TransferPages)
	}
	return res, nil
}
