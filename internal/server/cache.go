// Package server models the data servers whose memory traffic the
// paper studies: a storage server (Figure 1's read/write paths over a
// buffer cache, disk array and SAN) and a database server (bufferpool
// plus processor accesses). Running these models produces the OLTP-St
// and OLTP-Db style traces of Table 2, including the client-perceived
// response times that CP-Limit is defined against.
package server

import (
	"fmt"

	"dmamem/internal/memsys"
)

// ObjectID names a logical data object (a run of consecutive logical
// blocks requested as a unit: a DB page extent, a file region, ...).
type ObjectID int32

// BufferCache is an object-granularity buffer cache over a contiguous
// region of physical page frames. Objects occupy contiguous frame runs
// (DMA transfers in the traces are contiguous), allocated first-fit and
// reclaimed by evicting least-recently-used objects until a large
// enough run opens up.
type BufferCache struct {
	frames int // total frames managed

	// Free-run bookkeeping: frameOwner[f] = object occupying frame f,
	// or -1 when free.
	frameOwner []ObjectID

	// Resident objects, LRU-threaded.
	entries map[ObjectID]*cacheEntry
	head    *cacheEntry // most recently used
	tail    *cacheEntry // least recently used

	// hint is where the next free-run scan starts; it makes sequential
	// fills O(1) amortized instead of quadratic.
	hint int

	// Statistics.
	Hits, Misses int64
	Evictions    int64
}

type cacheEntry struct {
	id         ObjectID
	start      memsys.PageID
	pages      int
	prev, next *cacheEntry
}

// NewBufferCache manages the frame range [0, frames).
func NewBufferCache(frames int) (*BufferCache, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("server: cache of %d frames", frames)
	}
	c := &BufferCache{
		frames:     frames,
		frameOwner: make([]ObjectID, frames),
		entries:    make(map[ObjectID]*cacheEntry),
	}
	for i := range c.frameOwner {
		c.frameOwner[i] = -1
	}
	return c, nil
}

// Len returns the number of resident objects.
func (c *BufferCache) Len() int { return len(c.entries) }

// Lookup checks residency. On a hit the object becomes most recently
// used and its frame run is returned.
func (c *BufferCache) Lookup(id ObjectID) (start memsys.PageID, pages int, ok bool) {
	e, ok := c.entries[id]
	if !ok {
		c.Misses++
		return 0, 0, false
	}
	c.Hits++
	c.touch(e)
	return e.start, e.pages, true
}

// Insert caches an object of the given size, evicting LRU objects as
// needed, and returns the frame run it now occupies. Inserting an
// object larger than the whole cache or one that is already resident
// is a caller bug and panics.
func (c *BufferCache) Insert(id ObjectID, pages int) memsys.PageID {
	if pages <= 0 || pages > c.frames {
		panic(fmt.Sprintf("server: Insert(%d, %d pages) in %d-frame cache", id, pages, c.frames))
	}
	if _, ok := c.entries[id]; ok {
		panic(fmt.Sprintf("server: Insert of resident object %d", id))
	}
	start, ok := c.findRun(pages)
	for !ok {
		if c.tail == nil {
			panic("server: no run and nothing to evict")
		}
		c.evict(c.tail)
		start, ok = c.findRun(pages)
	}
	e := &cacheEntry{id: id, start: start, pages: pages}
	for f := 0; f < pages; f++ {
		c.frameOwner[int(start)+f] = id
	}
	c.entries[id] = e
	c.pushFront(e)
	return start
}

// Remove drops an object if resident; it reports whether it was.
func (c *BufferCache) Remove(id ObjectID) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.evict(e)
	c.Evictions-- // explicit removal is not an eviction
	return true
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *BufferCache) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// findRun locates a run of n free frames, scanning circularly from the
// last allocation point (next fit). On success the hint advances past
// the run.
func (c *BufferCache) findRun(n int) (memsys.PageID, bool) {
	if c.hint >= c.frames {
		c.hint = 0
	}
	// Two passes: hint..end, then 0..hint+n (runs do not wrap).
	for pass := 0; pass < 2; pass++ {
		start, end := c.hint, c.frames
		if pass == 1 {
			start, end = 0, c.hint+n-1
			if end > c.frames {
				end = c.frames
			}
		}
		run := 0
		for f := start; f < end; f++ {
			if c.frameOwner[f] == -1 {
				run++
				if run == n {
					c.hint = f + 1
					return memsys.PageID(f - n + 1), true
				}
			} else {
				run = 0
			}
		}
	}
	return 0, false
}

func (c *BufferCache) evict(e *cacheEntry) {
	for f := 0; f < e.pages; f++ {
		c.frameOwner[int(e.start)+f] = -1
	}
	c.unlink(e)
	delete(c.entries, e.id)
	c.Evictions++
}

func (c *BufferCache) touch(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *BufferCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *BufferCache) pushFront(e *cacheEntry) {
	e.next = c.head
	e.prev = nil
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// checkInvariants verifies internal consistency; tests call it.
func (c *BufferCache) checkInvariants() error {
	owned := 0
	for f, id := range c.frameOwner {
		if id == -1 {
			continue
		}
		owned++
		e, ok := c.entries[id]
		if !ok {
			return fmt.Errorf("frame %d owned by nonresident object %d", f, id)
		}
		if f < int(e.start) || f >= int(e.start)+e.pages {
			return fmt.Errorf("frame %d outside run of object %d", f, id)
		}
	}
	listed := 0
	seen := map[ObjectID]bool{}
	for e := c.head; e != nil; e = e.next {
		if seen[e.id] {
			return fmt.Errorf("object %d appears twice in LRU list", e.id)
		}
		seen[e.id] = true
		listed++
		owned -= e.pages
		if e.next == nil && c.tail != e {
			return fmt.Errorf("tail pointer wrong")
		}
	}
	if listed != len(c.entries) {
		return fmt.Errorf("LRU list has %d entries, map has %d", listed, len(c.entries))
	}
	if owned != 0 {
		return fmt.Errorf("frame ownership does not match entry sizes (residue %d)", owned)
	}
	return nil
}
