package server

import (
	"fmt"

	"dmamem/internal/memsys"
	"dmamem/internal/san"
	"dmamem/internal/sim"
	"dmamem/internal/synth"
	"dmamem/internal/trace"
)

// DatabaseConfig parameterizes the database-server model synthesizing
// our OLTP-Db trace: queries over a memory-resident bufferpool produce
// processor cache-line accesses plus network DMAs of the results
// (Table 2: "memory accesses from processors and network DMAs").
type DatabaseConfig struct {
	Seed     uint64
	Duration sim.Duration
	// QueryRatePerMs is the Poisson query arrival rate. Each query
	// emits one result transfer, so the paper's 100 transfers/ms is
	// QueryRatePerMs = 100.
	QueryRatePerMs float64
	// ProcAccessesPerQuery is the mean number of 64-byte processor
	// accesses a query performs (the OLTP-Db trace averages 233 per
	// transfer).
	ProcAccessesPerQuery float64
	// ProcAccessGap is the mean time between successive processor
	// accesses of one query (instruction work between memory touches).
	ProcAccessGap sim.Duration
	// Objects, Alpha and Sizes shape the bufferpool popularity; the
	// whole dataset is memory resident.
	Objects int
	Alpha   float64
	Sizes   []synth.SizeClass
	// Frames is the bufferpool size; it must hold the dataset.
	Frames    int
	PageBytes int
	Buses     int
	// BusBandwidth for nominal result-DMA durations.
	BusBandwidth float64
	SAN          san.Config
}

// DefaultDatabase returns the OLTP-Db calibration: 100 transfers/ms
// and 233 processor accesses per transfer.
func DefaultDatabase() DatabaseConfig {
	g := memsys.Default()
	return DatabaseConfig{
		Seed:                 11,
		Duration:             100 * sim.Millisecond,
		QueryRatePerMs:       100,
		ProcAccessesPerQuery: 233,
		ProcAccessGap:        300 * sim.Nanosecond,
		Objects:              40000,
		Alpha:                0.75,
		Frames:               g.TotalPages(),
		PageBytes:            g.PageBytes,
		Buses:                3,
		BusBandwidth:         1.064e9,
		SAN:                  san.DefaultConfig(),
	}
}

func (c DatabaseConfig) validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("server: nonpositive duration %v", c.Duration)
	case c.QueryRatePerMs <= 0:
		return fmt.Errorf("server: nonpositive query rate %g", c.QueryRatePerMs)
	case c.ProcAccessesPerQuery < 0:
		return fmt.Errorf("server: negative proc accesses %g", c.ProcAccessesPerQuery)
	case c.ProcAccessGap <= 0:
		return fmt.Errorf("server: nonpositive proc gap %v", c.ProcAccessGap)
	case c.Objects <= 0:
		return fmt.Errorf("server: %d objects", c.Objects)
	case c.Frames <= 0:
		return fmt.Errorf("server: %d frames", c.Frames)
	case c.PageBytes <= 0:
		return fmt.Errorf("server: page size %d", c.PageBytes)
	case c.Buses <= 0 || c.Buses > 255:
		return fmt.Errorf("server: %d buses", c.Buses)
	case c.BusBandwidth <= 0:
		return fmt.Errorf("server: bus bandwidth %g", c.BusBandwidth)
	}
	return nil
}

// DatabaseResult is the generated trace plus workload statistics.
type DatabaseResult struct {
	Trace    *trace.Trace
	Queries  int64
	MeanResp sim.Duration
}

// GenerateDatabase runs the database-server model. The bufferpool is
// pre-populated (a warm OLTP server); queries touch their object's
// pages with processor accesses and then DMA the result out.
func GenerateDatabase(c DatabaseConfig) (*DatabaseResult, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.Sizes == nil {
		c.Sizes = synth.DefaultSizes()
	}
	var totalWeight float64
	for _, s := range c.Sizes {
		totalWeight += s.Weight
	}

	rng := synth.NewRNG(c.Seed)
	zipf := synth.NewZipf(c.Objects, c.Alpha)
	perm := rng.Perm(c.Objects)

	pool, err := NewBufferCache(c.Frames)
	if err != nil {
		return nil, err
	}
	// Warm the pool with the whole dataset; fail loudly if it cannot
	// fit (the OLTP-Db configuration is memory resident by design).
	totalPages := 0
	for id := 0; id < c.Objects; id++ {
		totalPages += objectPages(ObjectID(id), c.Sizes, totalWeight)
	}
	if totalPages > c.Frames {
		return nil, fmt.Errorf("server: dataset (%d pages) exceeds bufferpool (%d frames)",
			totalPages, c.Frames)
	}
	for id := 0; id < c.Objects; id++ {
		pool.Insert(ObjectID(id), objectPages(ObjectID(id), c.Sizes, totalWeight))
	}

	fabric, err := san.NewFabric(c.SAN)
	if err != nil {
		return nil, err
	}

	res := &DatabaseResult{Trace: &trace.Trace{Name: "OLTP-Db"}}
	tr := res.Trace
	meanGap := 1e-3 / c.QueryRatePerMs
	var now sim.Time
	var respSum sim.Duration
	for {
		now = now.Add(sim.FromSeconds(rng.Exp(meanGap)))
		if now > sim.Time(c.Duration) {
			break
		}
		res.Queries++
		arrive := fabric.RequestArrival(now)
		obj := ObjectID(perm[zipf.Sample(rng)])
		start, pages, ok := pool.Lookup(obj)
		if !ok {
			panic("server: warm bufferpool missed")
		}
		// Execute: processor accesses over the object's pages (and a
		// sprinkle of index pages elsewhere in the pool).
		t := arrive
		n := int(rng.Exp(c.ProcAccessesPerQuery))
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			t = t.Add(sim.Duration(rng.Exp(float64(c.ProcAccessGap))))
			page := start + memsys.PageID(rng.Intn(pages))
			if rng.Float64() < 0.2 { // index/catalog touch
				idxObj := ObjectID(perm[zipf.Sample(rng)])
				if s, p, ok := pool.Lookup(idxObj); ok {
					page = s + memsys.PageID(rng.Intn(p))
				}
			}
			kind := trace.ProcRead
			if rng.Float64() < 0.3 {
				kind = trace.ProcWrite
			}
			tr.Records = append(tr.Records, trace.Record{
				Time: t, Kind: kind, Source: trace.SrcProcessor, Page: page,
			})
		}
		// Result DMA out of memory.
		tr.Records = append(tr.Records, trace.Record{
			Time: t, Kind: trace.DMARead, Source: trace.SrcNetwork,
			Bus: uint8(rng.Intn(c.Buses)), Pages: uint16(pages), Page: start,
		})
		bytes := int64(pages) * int64(c.PageBytes)
		dmaDur := sim.FromSeconds(float64(bytes) / c.BusBandwidth)
		done := fabric.Reply(t.Add(dmaDur), bytes)
		respSum += done.Sub(now)
	}
	tr.SortByTime()
	if res.Queries > 0 {
		res.MeanResp = sim.Duration(int64(respSum) / res.Queries)
		tr.Meta.MeanClientResponse = res.MeanResp
		tr.Meta.TransfersPerClientRequest = 1
	}
	return res, nil
}
