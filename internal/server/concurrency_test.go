package server

import (
	"reflect"
	"sync"
	"testing"

	"dmamem/internal/sim"
)

// TestConcurrentServerGeneratorsSeedIsolation verifies that the full
// workload models (storage and database servers, each a discrete-event
// simulation on its own sim.Engine) are isolated between goroutines:
// concurrently generated traces are bit-identical to sequentially
// generated ones. The parallel experiment runner generates workloads
// concurrently through the suite's single-flight cache, so this is the
// property that keeps parallel experiment output byte-identical.
func TestConcurrentServerGeneratorsSeedIsolation(t *testing.T) {
	genStorage := func() *StorageResult {
		cfg := DefaultStorage()
		cfg.Duration = 3 * sim.Millisecond
		cfg.Seed = 8
		res, err := GenerateStorage(cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		return res
	}
	genDatabase := func() *DatabaseResult {
		cfg := DefaultDatabase()
		cfg.Duration = 2 * sim.Millisecond
		cfg.Seed = 12
		res, err := GenerateDatabase(cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		return res
	}

	wantSt := genStorage()
	wantDb := genDatabase()
	if wantSt == nil || wantDb == nil {
		t.Fatal("sequential generation failed")
	}

	// Mixed workload kinds racing each other, several replicas each.
	const replicas = 3
	gotSt := make([]*StorageResult, replicas)
	gotDb := make([]*DatabaseResult, replicas)
	var wg sync.WaitGroup
	for i := 0; i < replicas; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			gotSt[i] = genStorage()
		}(i)
		go func(i int) {
			defer wg.Done()
			gotDb[i] = genDatabase()
		}(i)
	}
	wg.Wait()

	for i := 0; i < replicas; i++ {
		if !reflect.DeepEqual(gotSt[i].Trace, wantSt.Trace) {
			t.Errorf("replica %d: concurrent storage trace differs from sequential", i)
		}
		if !reflect.DeepEqual(gotDb[i].Trace, wantDb.Trace) {
			t.Errorf("replica %d: concurrent database trace differs from sequential", i)
		}
	}
}
