package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dmamem/internal/experiments"
)

// noopJob builds a fast sweep job (no simulation runs) for scheduler
// and lifecycle tests. Distinct point counts give distinct cache
// hashes.
func noopJob(tenant string, points int) Job {
	return Job{Tenant: tenant, Grid: &experiments.GridSpec{Name: "noop", Points: points}}
}

// TestSchedulerWeightedFairOrder pins the WFQ dispatch order exactly:
// with tenant A at weight 2 and B at weight 1, both backlogged, the
// scheduler serves A twice for every B, deterministically.
func TestSchedulerWeightedFairOrder(t *testing.T) {
	s := newScheduler(0, map[string]float64{"a": 2, "b": 1})
	mk := func(tenant string, i int) *jobState {
		js := newJobState(fmt.Sprintf("%s-%d", tenant, i), tenant, "", work{}, 0, context.Background())
		return js
	}
	for i := 0; i < 6; i++ {
		if err := s.submit(mk("a", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.submit(mk("b", i)); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 9; i++ {
		js, ok := s.next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		order = append(order, js.tenant)
		s.finish(js.tenant)
	}
	got := strings.Join(order, "")
	// A's tags: 0.5, 1.0, 1.5, ...; B's: 1, 2, 3. Ties go to the
	// first tenant in name order (a), so the service pattern is aab
	// repeating — exactly the 2:1 weighted share.
	if want := "aabaabaab"; got != want {
		t.Fatalf("dispatch order %q, want %q", got, want)
	}
}

// TestSchedulerEqualWeightsInterleave checks the unweighted case:
// equal tenants alternate instead of one FIFO starving the other,
// no matter who flooded the queue first.
func TestSchedulerEqualWeightsInterleave(t *testing.T) {
	s := newScheduler(0, nil)
	for i := 0; i < 4; i++ {
		if err := s.submit(newJobState(fmt.Sprintf("x-%d", i), "x", "", work{}, 0, context.Background())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.submit(newJobState(fmt.Sprintf("y-%d", i), "y", "", work{}, 0, context.Background())); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for i := 0; i < 8; i++ {
		js, ok := s.next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		order = append(order, js.tenant)
		s.finish(js.tenant)
	}
	if got := strings.Join(order, ""); got != "xyxyxyxy" {
		t.Fatalf("dispatch order %q, want alternating xyxyxyxy", got)
	}
}

// TestDaemonFairDispatchOrder drives the same property through the
// whole daemon: jobs submitted while the fleet is paused are executed
// in weighted fair order once a single worker starts.
func TestDaemonFairDispatchOrder(t *testing.T) {
	d := newPaused(Config{TenantWeights: map[string]float64{"heavy": 2, "light": 1}})
	defer d.Close()

	var mu sync.Mutex
	var ran []string
	d.cfg.Log = writerFunc(func(p []byte) (int, error) {
		line := string(p)
		if strings.Contains(line, ": running") {
			mu.Lock()
			switch {
			case strings.Contains(line, "tenant heavy"):
				ran = append(ran, "h")
			case strings.Contains(line, "tenant light"):
				ran = append(ran, "l")
			}
			mu.Unlock()
		}
		return len(p), nil
	})

	var ids []string
	for i := 0; i < 6; i++ {
		st, err := d.Submit(noopJob("heavy", 100+i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for i := 0; i < 3; i++ {
		st, err := d.Submit(noopJob("light", 200+i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	d.startWorkers(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, id := range ids {
		st, err := d.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.Status != StatusDone {
			t.Fatalf("job %s finished %q: %s", id, st.Status, st.Error)
		}
	}
	mu.Lock()
	got := strings.Join(ran, "")
	mu.Unlock()
	if want := "hhlhhlhhl"; got != want {
		t.Fatalf("execution order %q, want %q", got, want)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestMultiTenantConcurrentJobs is the -race stress gate: N tenants
// submit M jobs each from concurrent goroutines while a small fleet
// drains them. Every job completes, the counters balance, and every
// tenant's quota accounting returns to zero (a leak would make a
// follow-up submission fail).
func TestMultiTenantConcurrentJobs(t *testing.T) {
	const tenants, jobsPer = 4, 8
	d := New(Config{Workers: 4, TenantQuota: jobsPer + 1})
	defer d.Close()

	ids := make(chan string, tenants*jobsPer)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < jobsPer; i++ {
				st, err := d.Submit(noopJob(fmt.Sprintf("tenant-%d", ti), 1000+ti*jobsPer+i))
				if err != nil {
					t.Errorf("tenant %d job %d: %v", ti, i, err)
					return
				}
				ids <- st.ID
			}
		}()
	}
	wg.Wait()
	close(ids)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for id := range ids {
		st, err := d.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if st.Status != StatusDone {
			t.Fatalf("job %s finished %q: %s", id, st.Status, st.Error)
		}
	}
	if got := d.Counters().Get("jobs_completed"); got != tenants*jobsPer {
		t.Errorf("jobs_completed = %d, want %d", got, tenants*jobsPer)
	}
	if got := d.Counters().Get("runs"); got != tenants*jobsPer {
		t.Errorf("runs = %d, want %d (every job distinct, no cache hits)", got, tenants*jobsPer)
	}
	// Quota accounting drained: every tenant can fill its quota again.
	for ti := 0; ti < tenants; ti++ {
		if _, err := d.Submit(noopJob(fmt.Sprintf("tenant-%d", ti), 3000+ti)); err != nil {
			t.Errorf("tenant %d blocked after drain: %v", ti, err)
		}
	}
}

// TestCacheHitSkipsRun pins the result-cache fast path with an
// instrumented run counter: the second submission of an identical job
// completes immediately as a cache hit, byte-identical result, no
// second simulation.
func TestCacheHitSkipsRun(t *testing.T) {
	d := New(Config{Workers: 1})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job := Job{Tenant: "a", Workload: "Synthetic-St"}
	st1, err := d.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(ctx, st1.ID); err != nil {
		t.Fatal(err)
	}
	r1, st1b, _ := d.Result(st1.ID)
	if st1b.Status != StatusDone || st1b.Cached {
		t.Fatalf("first run: %+v", st1b)
	}
	if got := d.Counters().Get("runs"); got != 1 {
		t.Fatalf("runs after first job = %d, want 1", got)
	}

	// Same spec from a different tenant: served from cache, no run.
	st2, err := d.Submit(Job{Tenant: "b", Workload: "Synthetic-St"})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Status != StatusDone || !st2.Cached {
		t.Fatalf("second submission not a synchronous cache hit: %+v", st2)
	}
	if st2.Hash != st1b.Hash {
		t.Errorf("cache hit under a different hash: %s vs %s", st2.Hash, st1b.Hash)
	}
	r2, _, _ := d.Result(st2.ID)
	if string(r1) != string(r2) {
		t.Error("cached result differs from the original run")
	}
	if got := d.Counters().Get("runs"); got != 1 {
		t.Errorf("runs after cache hit = %d, want still 1", got)
	}
	if got := d.Counters().Get("cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}

	// A different Workers setting is a different canonical spec: it
	// must run, not hit.
	st3, err := d.Submit(Job{Tenant: "a", Workload: "Synthetic-St", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st3.Cached {
		t.Error("Workers variant was served from cache; it must run the parallel engine")
	}
	if _, err := d.Wait(ctx, st3.ID); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().Get("runs"); got != 2 {
		t.Errorf("runs after Workers variant = %d, want 2", got)
	}
}

// TestQuotaRejectionTyped pins admission control: submissions beyond
// the per-tenant quota fail loudly with a *QuotaError naming the
// tenant and limits, other tenants are unaffected, and capacity
// frees once jobs finish.
func TestQuotaRejectionTyped(t *testing.T) {
	d := newPaused(Config{TenantQuota: 2})
	defer d.Close()

	for i := 0; i < 2; i++ {
		if _, err := d.Submit(noopJob("greedy", 10+i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := d.Submit(noopJob("greedy", 12))
	if err == nil {
		t.Fatal("third submission admitted over a quota of 2")
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("error %T is not a *QuotaError: %v", err, err)
	}
	if qe.Tenant != "greedy" || qe.Active != 2 || qe.Limit != 2 {
		t.Errorf("QuotaError fields %+v, want tenant greedy, active 2, limit 2", qe)
	}
	for _, want := range []string{`"greedy"`, "2 jobs queued or running", "limit 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("quota error %q does not mention %s", err, want)
		}
	}
	if got := d.Counters().Get("jobs_rejected_quota"); got != 1 {
		t.Errorf("jobs_rejected_quota = %d, want 1", got)
	}

	// Admission is per tenant: a polite tenant is not collateral.
	if _, err := d.Submit(noopJob("polite", 20)); err != nil {
		t.Errorf("other tenant rejected: %v", err)
	}

	// Draining the queue frees the quota.
	d.startWorkers(1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := d.Submit(noopJob("greedy", int(30+time.Now().UnixNano()%1000))); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quota never freed after the queue drained")
		}
		select {
		case <-ctx.Done():
			t.Fatal(ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestCancelQueuedJob cancels a job before any worker picks it up:
// it completes as canceled without ever running, and the worker that
// later dequeues it skips it cleanly.
func TestCancelQueuedJob(t *testing.T) {
	d := newPaused(Config{})
	defer d.Close()
	st, err := d.Submit(noopJob("a", 5))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d.Cancel(st.ID)
	if !ok || got.Status != StatusCanceled {
		t.Fatalf("cancel: %+v ok=%v", got, ok)
	}
	// Canceling again is a no-op, not a double transition.
	again, _ := d.Cancel(st.ID)
	if again.Status != StatusCanceled {
		t.Fatalf("second cancel: %+v", again)
	}
	d.startWorkers(1)
	// Submit a live job behind it; when it completes, the canceled one
	// was necessarily dequeued and skipped without running.
	st2, err := d.Submit(noopJob("a", 6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := d.Wait(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	if got := d.Counters().Get("runs"); got != 1 {
		t.Errorf("runs = %d, want 1 (the canceled job must not run)", got)
	}
	if got := d.Counters().Get("jobs_canceled"); got != 1 {
		t.Errorf("jobs_canceled = %d, want 1", got)
	}
}

// TestCancelRunningJob tears down a mid-flight simulation through its
// context: the job ends canceled (not failed, not done), the worker
// survives to run the next job, and the daemon shuts down cleanly
// afterwards.
func TestCancelRunningJob(t *testing.T) {
	d := New(Config{Workers: 1})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// The hook fires after the job enters the running state and
	// before its simulation executes, so the cancel deterministically
	// lands mid-job — the simulation then dies on its first context
	// poll no matter how fast it is.
	canceled := make(chan string, 1)
	d.runningHook = func(js *jobState) {
		if _, ok := d.Cancel(js.id); !ok {
			t.Error("cancel lost the running job")
		}
		canceled <- js.id
	}
	st, err := d.Submit(Job{Tenant: "a", Workload: "Synthetic-St", DurationMs: 100})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-canceled:
	case <-ctx.Done():
		t.Fatal("timed out waiting for the job to start")
	}
	d.runningHook = nil
	final, err := d.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusCanceled {
		t.Fatalf("job finished %q, want canceled (error %q)", final.Status, final.Error)
	}
	// The result endpoint refuses politely.
	if result, stR, _ := d.Result(st.ID); len(result) != 0 || stR.Status != StatusCanceled {
		t.Errorf("canceled job leaked a result (%d bytes, %+v)", len(result), stR)
	}
	// The worker survives: a fresh fast job still completes.
	st2, err := d.Submit(noopJob("a", 7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Wait(ctx, st2.ID)
	if err != nil || got.Status != StatusDone {
		t.Fatalf("follow-up job after cancel: %+v, %v", got, err)
	}
}

// TestDaemonCloseCancelsInFlight shuts the daemon down with queued
// work and requires Close to return (no hung worker, no leaked
// goroutine blocking on the scheduler).
func TestDaemonCloseCancelsInFlight(t *testing.T) {
	d := newPaused(Config{})
	for i := 0; i < 4; i++ {
		if _, err := d.Submit(noopJob("a", 40+i)); err != nil {
			t.Fatal(err)
		}
	}
	d.startWorkers(2)
	done := make(chan struct{})
	go func() { d.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not drain the fleet")
	}
	// Submissions after close fail loudly.
	if _, err := d.Submit(noopJob("a", 99)); !errors.Is(err, errSchedClosed) {
		t.Errorf("submit after close: %v, want errSchedClosed", err)
	}
}

// TestEventStreamOrdering holds every job to a monotonically
// sequenced event stream whose last entry is terminal — the contract
// the NDJSON endpoint relays.
func TestEventStreamOrdering(t *testing.T) {
	d := New(Config{Workers: 2})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := d.Submit(noopJob("a", 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	js, _ := d.get(st.ID)
	js.mu.Lock()
	events := append([]Event(nil), js.events...)
	js.mu.Unlock()
	if len(events) < 3 {
		t.Fatalf("events %+v", events)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d has Seq %d", i, ev.Seq)
		}
	}
	if events[0].State != StatusQueued {
		t.Errorf("first event %+v, want queued", events[0])
	}
	if last := events[len(events)-1]; last.State != StatusDone {
		t.Errorf("last event %+v, want done", last)
	}
	b, err := json.Marshal(events[0])
	if err != nil || !strings.Contains(string(b), `"State"`) {
		t.Errorf("event does not serialize cleanly: %s, %v", b, err)
	}
}
