package service

import (
	"container/list"
	"sync"
)

// resultCache maps canonical job hashes to completed result bytes
// with LRU eviction. Because simulations are deterministic and results
// are canonically serialized, a hit is byte-identical to a fresh run —
// every tenant asking the same question gets the same bit-stable
// answer without a simulation running twice.
type resultCache struct {
	mu    sync.Mutex
	max   int
	byKey map[string]*list.Element
	order *list.List // front = most recently used
}

type cacheSlot struct {
	key    string
	result []byte
}

// newResultCache returns a cache bounded to max entries; max <= 0
// disables caching entirely (every get misses).
func newResultCache(max int) *resultCache {
	return &resultCache{max: max, byKey: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached result bytes for a hash, refreshing its
// recency. The returned slice is shared and must not be mutated.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).result, true
}

// put stores a completed result, evicting the least recently used
// entries beyond the bound.
func (c *resultCache) put(key string, result []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheSlot).result = result
		return
	}
	c.byKey[key] = c.order.PushFront(&cacheSlot{key: key, result: result})
	for c.order.Len() > c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheSlot).key)
	}
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
