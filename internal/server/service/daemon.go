package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"dmamem/internal/experiments"
	"dmamem/internal/metrics"
)

// Config parameterizes a Daemon. The zero value is a runnable
// single-box service: 2 workers, quota 16 jobs per tenant, a
// 256-entry result cache, in-process grid execution.
type Config struct {
	// Workers is the job-execution fleet size; <= 0 means 2. Each
	// worker runs one job at a time, so Workers bounds the daemon's
	// concurrent simulations.
	Workers int
	// TenantQuota is the per-tenant admission bound on queued plus
	// running jobs; 0 means 16, negative means unlimited.
	TenantQuota int
	// TenantWeights sets per-tenant fair-queueing weights; unlisted
	// tenants get weight 1. A weight-2 tenant receives twice the
	// service share of a weight-1 tenant under contention.
	TenantWeights map[string]float64
	// CacheEntries bounds the result cache; 0 means 256, negative
	// disables caching.
	CacheEntries int
	// PointParallel is the per-job worker-goroutine budget for
	// in-process grid jobs; <= 0 means 1 (serial, the reference).
	PointParallel int
	// MaxGridPoints rejects grid jobs resolving to more points at
	// admission; 0 means 4096, negative means unlimited.
	MaxGridPoints int
	// ShardAddrs, when non-empty, fans every grid job's points out to
	// these TCP shard workers (experiments.ListenAndServeShards)
	// through the retrying Coordinator instead of running them
	// in-process.
	ShardAddrs []string
	// Shards is the slice count for sharded grid jobs; 0 means
	// len(ShardAddrs).
	Shards int
	// ShardTimeout bounds one shard slice attempt (Coordinator
	// semantics); 0 means no limit.
	ShardTimeout time.Duration
	// ShardRetries is the Coordinator retry budget for slices lost to
	// transport failures; 0 means the coordinator default, negative
	// disables retries.
	ShardRetries int
	// Log, when non-nil, receives one line per job state change.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.TenantQuota == 0 {
		c.TenantQuota = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.PointParallel <= 0 {
		c.PointParallel = 1
	}
	if c.MaxGridPoints == 0 {
		c.MaxGridPoints = 4096
	}
	if c.Shards == 0 {
		c.Shards = len(c.ShardAddrs)
	}
	return c
}

// Job lifecycle states.
const (
	StatusQueued   = "queued"
	StatusRunning  = "running"
	StatusDone     = "done"
	StatusFailed   = "failed"
	StatusCanceled = "canceled"
)

func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCanceled
}

// Event is one entry of a job's progress stream: a lifecycle
// transition or a finished grid point.
type Event struct {
	// Seq is the event's position in the job's stream, from 0.
	Seq int
	// State is a lifecycle state ("queued", "running", "done",
	// "failed", "canceled") or "point" for a finished grid point.
	State string
	// Detail carries the point label, the error message, or "cache"
	// for a cache-served completion.
	Detail string `json:",omitempty"`
}

// JobStatus is the API view of one job.
type JobStatus struct {
	// ID is the daemon-assigned job identity ("job-000001").
	ID string
	// Tenant that submitted the job.
	Tenant string
	// Hash is the canonical config hash keying the result cache; two
	// jobs with equal hashes always have byte-identical results.
	Hash string
	// Status is the lifecycle state.
	Status string
	// Cached reports that the result was served from the cache
	// without running.
	Cached bool `json:",omitempty"`
	// Points is the grid point count (0 for report jobs).
	Points int `json:",omitempty"`
	// Error is the failure message of a failed job.
	Error string `json:",omitempty"`
}

// jobState is the daemon-internal record of one submission.
type jobState struct {
	id     string
	tenant string
	hash   string
	w      work
	points int
	tag    float64 // WFQ virtual finish tag, set by the scheduler

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	status string
	cached bool
	result []byte
	errmsg string
	events []Event
	wake   *sync.Cond
	done   chan struct{}
}

func newJobState(id, tenant, hash string, w work, points int, parent context.Context) *jobState {
	js := &jobState{
		id: id, tenant: tenant, hash: hash, w: w, points: points,
		status: StatusQueued,
		done:   make(chan struct{}),
	}
	js.wake = sync.NewCond(&js.mu)
	js.ctx, js.cancel = context.WithCancel(parent)
	return js
}

// event appends a progress event (not a state change).
func (js *jobState) event(state, detail string) {
	js.mu.Lock()
	js.events = append(js.events, Event{Seq: len(js.events), State: state, Detail: detail})
	js.wake.Broadcast()
	js.mu.Unlock()
}

// transition moves the job from one lifecycle state to another,
// appending the matching event. It returns false (and does nothing)
// when the job is not in the expected state — the worker/cancel race
// is resolved by whoever transitions first.
func (js *jobState) transition(from, to, detail string) bool {
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.status != from {
		return false
	}
	js.status = to
	js.events = append(js.events, Event{Seq: len(js.events), State: to, Detail: detail})
	if terminal(to) {
		js.cancel() // release the context either way
		close(js.done)
	}
	js.wake.Broadcast()
	return true
}

// status snapshots the API view.
func (js *jobState) statusView() JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	return JobStatus{
		ID: js.id, Tenant: js.tenant, Hash: js.hash, Status: js.status,
		Cached: js.cached, Points: js.points, Error: js.errmsg,
	}
}

// waitEvent blocks until event seq exists (returning it) or ctx ends.
func (js *jobState) waitEvent(ctx context.Context, seq int) (Event, bool) {
	stop := context.AfterFunc(ctx, func() {
		js.mu.Lock()
		js.wake.Broadcast()
		js.mu.Unlock()
	})
	defer stop()
	js.mu.Lock()
	defer js.mu.Unlock()
	for seq >= len(js.events) {
		if ctx.Err() != nil {
			return Event{}, false
		}
		js.wake.Wait()
	}
	return js.events[seq], true
}

// Daemon is the simulation service: a bounded worker fleet draining a
// weighted fair queue of tenant jobs, with a canonical-hash result
// cache in front. Create one with New and stop it with Close.
type Daemon struct {
	cfg      Config
	sched    *scheduler
	cache    *resultCache
	counters *metrics.Counters

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*jobState
	seq    int
	closed bool

	// runningHook, when set (tests only), runs after a job enters the
	// running state and before it executes — the deterministic seam
	// for exercising mid-job cancellation without racing a simulation.
	runningHook func(*jobState)
}

// New starts a daemon with cfg's worker fleet running.
func New(cfg Config) *Daemon {
	d := newPaused(cfg)
	d.startWorkers(d.cfg.Workers)
	return d
}

// newPaused builds a daemon without starting workers — the test
// seam that makes scheduling order observable: submit first, then
// startWorkers.
func newPaused(cfg Config) *Daemon {
	cfg = cfg.withDefaults()
	d := &Daemon{
		cfg:      cfg,
		sched:    newScheduler(cfg.TenantQuota, cfg.TenantWeights),
		cache:    newResultCache(cfg.CacheEntries),
		counters: &metrics.Counters{},
		jobs:     map[string]*jobState{},
	}
	d.baseCtx, d.cancel = context.WithCancel(context.Background())
	return d
}

func (d *Daemon) startWorkers(n int) {
	for i := 0; i < n; i++ {
		d.wg.Add(1)
		go d.worker()
	}
}

// Close stops accepting jobs, cancels everything queued or running,
// and waits for the workers to drain.
func (d *Daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.cancel() // cancels every job context
	d.sched.close()
	d.wg.Wait()
}

// Counters exposes the daemon's monotonic event counters
// (jobs_submitted, runs, cache_hits, ...) for the stats endpoint and
// tests.
func (d *Daemon) Counters() *metrics.Counters { return d.counters }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Log != nil {
		fmt.Fprintf(d.cfg.Log, format+"\n", args...)
	}
}

// Submit validates, normalizes and enqueues one job. The cache fast
// path completes the job immediately — without occupying a worker or
// consuming quota — when a canonical twin already ran. The error is a
// *QuotaError for admission rejections and wraps ErrBadJob for
// validation failures.
func (d *Daemon) Submit(j Job) (JobStatus, error) {
	w, points, err := j.normalize(d.cfg.MaxGridPoints)
	if err != nil {
		d.counters.Add("jobs_rejected", 1)
		return JobStatus{}, err
	}
	hash, err := experiments.CanonicalHash(w)
	if err != nil {
		return JobStatus{}, fmt.Errorf("service: hashing job: %w", err)
	}
	tenant := j.Tenant
	if tenant == "" {
		tenant = "default"
	}

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return JobStatus{}, errSchedClosed
	}
	d.seq++
	id := fmt.Sprintf("job-%06d", d.seq)
	js := newJobState(id, tenant, hash, w, points, d.baseCtx)
	d.jobs[id] = js
	d.mu.Unlock()
	d.counters.Add("jobs_submitted", 1)

	if cached, ok := d.cache.get(hash); ok {
		js.mu.Lock()
		js.cached = true
		js.result = cached
		js.mu.Unlock()
		js.transition(StatusQueued, StatusDone, "cache")
		d.counters.Add("cache_hits", 1)
		d.counters.Add("jobs_completed", 1)
		d.logf("job %s (tenant %s): served from cache (%s)", id, tenant, hash[:12])
		return js.statusView(), nil
	}

	js.event(StatusQueued, "")
	if err := d.sched.submit(js); err != nil {
		d.mu.Lock()
		delete(d.jobs, id)
		d.mu.Unlock()
		var qe *QuotaError
		if errors.As(err, &qe) {
			d.counters.Add("jobs_rejected_quota", 1)
		}
		return JobStatus{}, err
	}
	d.logf("job %s (tenant %s): queued (%s)", id, tenant, hash[:12])
	return js.statusView(), nil
}

// worker drains the fair queue until the scheduler closes.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		js, ok := d.sched.next()
		if !ok {
			return
		}
		d.runJob(js)
		d.sched.finish(js.tenant)
	}
}

// runJob executes one dequeued job, resolving the cancel/run race
// through the state machine.
func (d *Daemon) runJob(js *jobState) {
	if js.ctx.Err() != nil {
		// Canceled (or daemon shutdown) while queued; the transition
		// fails when an explicit Cancel already completed the job, in
		// which case that side counted it.
		if js.transition(StatusQueued, StatusCanceled, js.ctx.Err().Error()) {
			d.counters.Add("jobs_canceled", 1)
		}
		return
	}
	if !js.transition(StatusQueued, StatusRunning, "") {
		return // canceled concurrently; the canceling side counted it
	}
	d.logf("job %s (tenant %s): running", js.id, js.tenant)
	d.counters.Add("runs", 1)
	if d.runningHook != nil {
		d.runningHook(js)
	}
	result, err := d.execute(js)
	if err != nil {
		if js.ctx.Err() != nil {
			js.transition(StatusRunning, StatusCanceled, err.Error())
			d.counters.Add("jobs_canceled", 1)
			d.logf("job %s (tenant %s): canceled", js.id, js.tenant)
			return
		}
		js.mu.Lock()
		js.errmsg = err.Error()
		js.mu.Unlock()
		js.transition(StatusRunning, StatusFailed, err.Error())
		d.counters.Add("jobs_failed", 1)
		d.logf("job %s (tenant %s): failed: %v", js.id, js.tenant, err)
		return
	}
	d.cache.put(js.hash, result)
	js.mu.Lock()
	js.result = result
	js.mu.Unlock()
	js.transition(StatusRunning, StatusDone, "")
	d.counters.Add("jobs_completed", 1)
	d.logf("job %s (tenant %s): done (%d bytes)", js.id, js.tenant, len(result))
}

// execute runs the job's work spec and returns the canonical result
// bytes. Errors are wrapped with the job and tenant identity, so a
// failure deep in a shard slice still names whose sweep it broke
// ("job-000007 (tenant acme): ... shard 1/2 (points 3..5): ...").
func (d *Daemon) execute(js *jobState) ([]byte, error) {
	var (
		result []byte
		err    error
	)
	switch {
	case js.w.Report != nil:
		var rep any
		rep, err = experiments.RunReport(js.ctx, *js.w.Report)
		if err == nil {
			result, err = experiments.CanonicalJSON(rep)
		}
	case js.w.Grid != nil:
		result, err = d.executeGrid(js)
	default:
		err = errors.New("empty work spec")
	}
	if err != nil {
		return nil, fmt.Errorf("service: job %s (tenant %s): %w", js.id, js.tenant, err)
	}
	return result, nil
}

// executeGrid runs a grid job in-process, or through the TCP shard
// coordinator when the daemon is configured with a worker fleet. Both
// paths produce byte-identical canonical point arrays.
func (d *Daemon) executeGrid(js *jobState) ([]byte, error) {
	gw := js.w.Grid
	if len(d.cfg.ShardAddrs) > 0 {
		c := &experiments.Coordinator{
			Shards:   d.cfg.Shards,
			Addrs:    d.cfg.ShardAddrs,
			Timeout:  d.cfg.ShardTimeout,
			Retries:  d.cfg.ShardRetries,
			Parallel: d.cfg.PointParallel,
		}
		points, err := c.Run(js.ctx, gw.Suite, gw.Grid)
		if err != nil {
			return nil, err
		}
		d.counters.Add("grid_points", uint64(len(points)))
		js.event("point", fmt.Sprintf("%d points via %d shard workers", len(points), len(d.cfg.ShardAddrs)))
		return experiments.CanonicalJSON(points)
	}
	s := experiments.NewSuiteFromSpec(gw.Suite)
	s.Workers = gw.Workers
	if d.cfg.PointParallel > 1 {
		s.Runner = &experiments.Runner{Parallel: d.cfg.PointParallel}
	}
	points, err := experiments.GridRunRaw(js.ctx, s, gw.Grid, func(i int, label string) {
		js.event("point", label)
		d.counters.Add("grid_points", 1)
	})
	if err != nil {
		return nil, err
	}
	return experiments.CanonicalJSON(points)
}

// get looks a job up by ID.
func (d *Daemon) get(id string) (*jobState, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	js, ok := d.jobs[id]
	return js, ok
}

// Status returns the API view of a job.
func (d *Daemon) Status(id string) (JobStatus, bool) {
	js, ok := d.get(id)
	if !ok {
		return JobStatus{}, false
	}
	return js.statusView(), true
}

// Result returns the canonical result bytes of a completed job.
func (d *Daemon) Result(id string) ([]byte, JobStatus, bool) {
	js, ok := d.get(id)
	if !ok {
		return nil, JobStatus{}, false
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.result, JobStatus{
		ID: js.id, Tenant: js.tenant, Hash: js.hash, Status: js.status,
		Cached: js.cached, Points: js.points, Error: js.errmsg,
	}, true
}

// Cancel cancels a job: queued jobs complete as canceled immediately,
// running jobs abort through their context within microseconds of
// simulated dispatch. Canceling a terminal job is a no-op.
func (d *Daemon) Cancel(id string) (JobStatus, bool) {
	js, ok := d.get(id)
	if !ok {
		return JobStatus{}, false
	}
	if js.transition(StatusQueued, StatusCanceled, "canceled before running") {
		d.counters.Add("jobs_canceled", 1)
	}
	js.cancel() // aborts a running simulation mid-flight
	return js.statusView(), true
}

// Wait blocks until the job reaches a terminal state or ctx ends.
func (d *Daemon) Wait(ctx context.Context, id string) (JobStatus, error) {
	js, ok := d.get(id)
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-js.done:
		return js.statusView(), nil
	case <-ctx.Done():
		return js.statusView(), ctx.Err()
	}
}
