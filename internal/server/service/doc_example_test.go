package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// TestServiceDocExample pins the worked example of docs/SERVICE.md:
// the curl request body and the golden file the document pairs it
// with are extracted from the document itself and executed against an
// in-process daemon, so the example cannot drift from the code
// (mirroring TestDMTSpecExample for the trace format document).
func TestServiceDocExample(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "..", "docs", "SERVICE.md"))
	if err != nil {
		t.Fatalf("reading docs/SERVICE.md: %v", err)
	}
	bodyRe := regexp.MustCompile(`-d '(\{[^']+\})'`)
	bodyM := bodyRe.FindSubmatch(doc)
	if bodyM == nil {
		t.Fatal("docs/SERVICE.md no longer contains a curl -d '{...}' example")
	}
	goldenRe := regexp.MustCompile(`internal/experiments/testdata/golden/([a-z0-9._-]+\.json)`)
	goldenM := goldenRe.FindSubmatch(doc)
	if goldenM == nil {
		t.Fatal("docs/SERVICE.md no longer names a golden corpus file")
	}

	_, srv := newTestServer(t, Config{Workers: 1})
	code, _, got := postJob(t, srv, string(bodyM[1]), true)
	if code != http.StatusOK {
		t.Fatalf("documented example returned status %d: %s", code, got)
	}
	want := goldenBytes(t, string(goldenM[1]))
	if !bytes.Equal(got, want) {
		t.Errorf("the documented example no longer returns %s byte-identically (%d vs %d bytes)",
			goldenM[1], len(got), len(want))
	}
}
