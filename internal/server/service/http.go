package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	// Kind classifies the failure: "bad-job", "over-quota",
	// "not-found", "shutting-down", "internal".
	Kind string
	// Error is the full message, including the legal values for
	// enumeration violations.
	Error string
}

func writeError(w http.ResponseWriter, code int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Kind: kind, Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/jobs              submit a job (?wait=1 blocks and returns the result body)
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/result  canonical result bytes of a done job
//	GET  /v1/jobs/{id}/events  NDJSON progress event stream (follows until terminal)
//	POST /v1/jobs/{id}/cancel  cancel a queued or running job
//	GET  /v1/metrics           service counters (Prometheus text style; also at /metrics)
//	GET  /v1/healthz           liveness probe
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", d.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", d.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", d.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", d.handleEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", d.handleCancel)
	mux.HandleFunc("GET /v1/metrics", d.handleMetrics)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"Status": "ok"})
	})
	return mux
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxJobBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-job", fmt.Sprintf("reading body: %v", err))
		return
	}
	job, err := DecodeJob(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad-job", err.Error())
		return
	}
	st, err := d.Submit(job)
	if err != nil {
		var qe *QuotaError
		switch {
		case errors.As(err, &qe):
			writeError(w, http.StatusTooManyRequests, "over-quota", err.Error())
		case errors.Is(err, ErrBadJob):
			writeError(w, http.StatusBadRequest, "bad-job", err.Error())
		case errors.Is(err, errSchedClosed):
			writeError(w, http.StatusServiceUnavailable, "shutting-down", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}
	if r.URL.Query().Get("wait") != "" {
		// Synchronous mode: block until terminal and respond exactly
		// like GET /v1/jobs/{id}/result — the one-curl path the CI
		// smoke test diffs against the golden corpus.
		if _, err := d.Wait(r.Context(), st.ID); err != nil {
			writeError(w, http.StatusRequestTimeout, "internal",
				fmt.Sprintf("job %s: interrupted waiting for completion: %v", st.ID, err))
			return
		}
		d.writeResult(w, st.ID)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := d.Status(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not-found", fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// writeResult responds with a terminal job's outcome: the canonical
// result bytes on success, the job's own error classification
// otherwise.
func (d *Daemon) writeResult(w http.ResponseWriter, id string) {
	result, st, ok := d.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, "not-found", fmt.Sprintf("unknown job %q", id))
		return
	}
	switch st.Status {
	case StatusDone:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Dmamem-Job", st.ID)
		w.Header().Set("X-Dmamem-Hash", st.Hash)
		if st.Cached {
			w.Header().Set("X-Dmamem-Cache", "hit")
		}
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, "job-failed", st.Error)
	case StatusCanceled:
		writeError(w, http.StatusConflict, "job-canceled", fmt.Sprintf("job %s was canceled", st.ID))
	default:
		writeError(w, http.StatusConflict, "not-done", fmt.Sprintf("job %s is %s; poll status or use ?wait=1", st.ID, st.Status))
	}
}

func (d *Daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	d.writeResult(w, r.PathValue("id"))
}

// handleEvents streams the job's progress events as NDJSON, following
// live until the job reaches a terminal state or the client leaves.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := d.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not-found", fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for seq := 0; ; seq++ {
		ev, ok := js.waitEvent(r.Context(), seq)
		if !ok {
			return // client gone
		}
		if enc.Encode(ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal(ev.State) {
			return
		}
	}
}

func (d *Daemon) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := d.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not-found", fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, d.counters.Render("dmamem_"))
}
