package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// QuotaError is the typed admission-control rejection: the tenant
// already has its quota of jobs queued or running. Handlers map it to
// HTTP 429; callers detect it with errors.As.
type QuotaError struct {
	// Tenant that was rejected.
	Tenant string
	// Active is the tenant's queued-plus-running job count at
	// rejection time.
	Active int
	// Limit is the per-tenant admission quota.
	Limit int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over admission quota: %d jobs queued or running (limit %d)",
		e.Tenant, e.Active, e.Limit)
}

var errSchedClosed = errors.New("service: daemon is shutting down")

// tenantState is one tenant's scheduler view: a FIFO of its queued
// jobs, its weighted-fair-queueing virtual finish time, and its
// admission accounting.
type tenantState struct {
	name string
	// weight scales the tenant's service share; a weight-2 tenant
	// finishes twice the jobs of a weight-1 tenant under contention.
	weight float64
	queue  []*jobState
	// lastFinish is the virtual finish tag of the tenant's most
	// recently tagged job.
	lastFinish float64
	// active counts the tenant's queued plus running jobs (admission
	// control); decremented when a job leaves a worker.
	active int
}

// scheduler is a weighted fair queue over tenants. Every submitted
// job gets a virtual finish tag
//
//	tag = max(virtualTime, tenant.lastFinish) + 1/weight
//
// and workers always run the queued job with the smallest tag
// (ties broken by tenant name, so dispatch order is deterministic).
// Under contention each tenant therefore receives service
// proportional to its weight no matter how many jobs it floods into
// its own FIFO — the classic start-time fair queueing argument with
// unit job cost.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	tenants map[string]*tenantState
	// vtime is the system virtual time: the largest finish tag ever
	// dispatched. New tenants join at vtime, so an idle tenant cannot
	// hoard credit.
	vtime   float64
	quota   int // per-tenant active bound; <= 0 means unlimited
	weights map[string]float64
	closed  bool
}

func newScheduler(quota int, weights map[string]float64) *scheduler {
	s := &scheduler{tenants: map[string]*tenantState{}, quota: quota, weights: weights}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *scheduler) tenant(name string) *tenantState {
	ts, ok := s.tenants[name]
	if !ok {
		w := s.weights[name]
		if w <= 0 {
			w = 1
		}
		ts = &tenantState{name: name, weight: w, lastFinish: s.vtime}
		s.tenants[name] = ts
	}
	return ts
}

// submit enqueues a job under its tenant, enforcing the admission
// quota. The returned error is a *QuotaError when the tenant is over
// quota.
func (s *scheduler) submit(j *jobState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errSchedClosed
	}
	ts := s.tenant(j.tenant)
	if s.quota > 0 && ts.active >= s.quota {
		return &QuotaError{Tenant: j.tenant, Active: ts.active, Limit: s.quota}
	}
	ts.active++
	tag := ts.lastFinish
	if s.vtime > tag {
		tag = s.vtime
	}
	tag += 1 / ts.weight
	ts.lastFinish = tag
	j.tag = tag
	ts.queue = append(ts.queue, j)
	s.cond.Signal()
	return nil
}

// next blocks until a job is available (returning the queued job with
// the smallest virtual finish tag) or the scheduler closes.
func (s *scheduler) next() (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		var best *tenantState
		// Deterministic tie-break: scan tenants in name order.
		names := make([]string, 0, len(s.tenants))
		for name := range s.tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := s.tenants[name]
			if len(ts.queue) == 0 {
				continue
			}
			if best == nil || ts.queue[0].tag < best.queue[0].tag {
				best = ts
			}
		}
		if best != nil {
			j := best.queue[0]
			best.queue = best.queue[1:]
			if j.tag > s.vtime {
				s.vtime = j.tag
			}
			return j, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// finish releases one unit of the tenant's admission quota — called
// by the worker that dequeued the job, whether it ran, failed, or was
// already canceled.
func (s *scheduler) finish(tenant string) {
	s.mu.Lock()
	if ts, ok := s.tenants[tenant]; ok && ts.active > 0 {
		ts.active--
	}
	s.mu.Unlock()
}

// close wakes every blocked worker; next returns false once the
// queues drain.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
