package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmamem/internal/experiments"
)

// newTestServer starts a daemon plus an in-process HTTP listener and
// tears both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Daemon, *httptest.Server) {
	t.Helper()
	d := New(cfg)
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	return d, srv
}

// postJob submits a job body and returns the response.
func postJob(t *testing.T, srv *httptest.Server, body string, wait bool) (int, http.Header, []byte) {
	t.Helper()
	url := srv.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, resp.Header, b
}

// goldenBytes reads one file of the committed golden-report corpus.
func goldenBytes(t *testing.T, file string) []byte {
	t.Helper()
	path := filepath.Join("..", "..", "experiments", "testdata", "golden", file)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden corpus: %v", err)
	}
	return b
}

// testGoldenReports drives every Table 2 workload x scheme through
// the service end to end and requires the response body to be
// byte-identical to the committed golden corpus.
func testGoldenReports(t *testing.T, workers int) {
	_, srv := newTestServer(t, Config{Workers: 2})
	for _, name := range experiments.WorkloadNames() {
		for _, scheme := range experiments.ReportSchemes() {
			name, scheme := name, scheme
			t.Run(name+"/"+scheme, func(t *testing.T) {
				t.Parallel()
				job := Job{Workload: name, Scheme: scheme, Workers: workers}
				body, err := json.Marshal(job)
				if err != nil {
					t.Fatal(err)
				}
				code, hdr, got := postJob(t, srv, string(body), true)
				if code != http.StatusOK {
					t.Fatalf("status %d: %s", code, got)
				}
				if hdr.Get("X-Dmamem-Hash") == "" {
					t.Error("response missing the X-Dmamem-Hash header")
				}
				want := goldenBytes(t, fmt.Sprintf("%s_%s.json", strings.ToLower(name), scheme))
				if !bytes.Equal(got, want) {
					t.Errorf("service response for %s/%s is not byte-identical to the golden corpus (%d vs %d bytes)",
						name, scheme, len(got), len(want))
				}
			})
		}
	}
}

// TestServiceGoldenReports is the end-to-end acceptance gate: every
// Table 2 workload x scheme submitted over HTTP returns exactly the
// committed golden report, through the serial reference engine.
func TestServiceGoldenReports(t *testing.T) {
	testGoldenReports(t, 0)
}

// TestServiceGoldenReportsParallelEngine repeats the end-to-end golden
// sweep with Workers: 4 inside each simulation — the daemon's parallel
// engine path must stay byte-identical to the serial goldens.
func TestServiceGoldenReportsParallelEngine(t *testing.T) {
	testGoldenReports(t, 4)
}

// TestServiceGoldenGridSweep submits the committed multi-channel
// figure 10 sweep as a grid job and requires the response to be
// byte-identical to its golden file — the grid path's canonical point
// serialization agrees with writeOrCompareGolden exactly.
func TestServiceGoldenGridSweep(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	body := `{"Grid":{"Name":"fig10","Workloads":["Synthetic-St"],"BusBW":[1.064e9],"Channels":[1,2,4]}}`
	code, _, got := postJob(t, srv, body, true)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, got)
	}
	want := goldenBytes(t, "fig10_channels.json")
	if !bytes.Equal(got, want) {
		t.Errorf("grid job response is not byte-identical to fig10_channels.json (%d vs %d bytes)", len(got), len(want))
	}
}

// TestServiceJobLifecycle walks the async API: submit without wait,
// poll status, fetch the result, stream the events, and check the
// metrics endpoint counted the work.
func TestServiceJobLifecycle(t *testing.T) {
	d, srv := newTestServer(t, Config{Workers: 1})

	code, _, body := postJob(t, srv, `{"Tenant":"acme","Grid":{"Name":"noop","Points":3}}`, false)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if st.ID == "" || st.Tenant != "acme" || st.Hash == "" || st.Points != 3 {
		t.Fatalf("submit response incomplete: %+v", st)
	}

	// The events stream follows the job to a terminal state.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) < 3 {
		t.Fatalf("want at least queued/running/done events, got %+v", events)
	}
	last := events[len(events)-1]
	if last.State != StatusDone {
		t.Fatalf("final event %+v, want done", last)
	}
	points := 0
	for _, ev := range events {
		if ev.State == "point" {
			points++
		}
	}
	if points != 3 {
		t.Errorf("event stream reported %d grid points, want 3", points)
	}

	// Status and result are consistent with the stream.
	code, _, body = getBody(t, srv, "/v1/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("status: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone {
		t.Fatalf("job status %q, want done", st.Status)
	}
	code, hdr, result := getBody(t, srv, "/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: %d: %s", code, result)
	}
	if hdr.Get("X-Dmamem-Job") != st.ID {
		t.Errorf("result job header %q, want %q", hdr.Get("X-Dmamem-Job"), st.ID)
	}
	var pts []json.RawMessage
	if err := json.Unmarshal(result, &pts); err != nil || len(pts) != 3 {
		t.Fatalf("result is not a 3-point array: %v (%s)", err, result)
	}

	// The metrics endpoint renders the counters.
	code, _, metricsBody := getBody(t, srv, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{"dmamem_jobs_submitted 1", "dmamem_runs 1", "dmamem_jobs_completed 1", "dmamem_grid_points 3"} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("metrics output missing %q:\n%s", want, metricsBody)
		}
	}
	if got := d.Counters().Get("jobs_submitted"); got != 1 {
		t.Errorf("jobs_submitted counter = %d, want 1", got)
	}
}

func getBody(t *testing.T, srv *httptest.Server, path string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestServiceBadJobs holds the HTTP layer to loud, classified errors:
// every malformed submission is a 400 with Kind "bad-job" and a
// message naming the offense, never a 200 or a hung connection.
func TestServiceBadJobs(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
		want string // substring of the error message
	}{
		{"empty", ``, "empty body"},
		{"not-json", `]][[`, "invalid character"},
		{"unknown-field", `{"Workload":"OLTP-St","Wrokload":"typo"}`, "unknown field"},
		{"trailing", `{"Workload":"OLTP-St"} trailing`, "trailing data"},
		{"neither", `{}`, "set either Workload"},
		{"both", `{"Workload":"OLTP-St","Grid":{"Name":"noop","Points":1}}`, "submit one job per kind"},
		{"bad-workload", `{"Workload":"OLTP-XX"}`, "unknown workload"},
		{"bad-scheme", `{"Workload":"OLTP-St","Scheme":"dma-xx"}`, "unknown scheme"},
		{"bad-tech", `{"Workload":"OLTP-St","Tech":"sram-9000"}`, "unknown memory technology"},
		{"bad-grid", `{"Grid":{"Name":"fig99"}}`, "unknown grid"},
		{"empty-grid", `{"Grid":{"Name":"noop"}}`, "0 points"},
		{"version-skew", `{"Version":7,"Workload":"OLTP-St"}`, "schema version 7"},
		{"negative-duration", `{"Workload":"OLTP-St","DurationMs":-4}`, "negative DurationMs"},
		{"one-group", `{"Workload":"OLTP-St","Scheme":"dma-ta-pl","PLGroups":1}`, "PLGroups 1"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postJob(t, srv, tc.body, false)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, body)
			}
			var ae struct{ Kind, Error string }
			if err := json.Unmarshal(body, &ae); err != nil {
				t.Fatalf("error body %q: %v", body, err)
			}
			if ae.Kind != "bad-job" {
				t.Errorf("Kind %q, want bad-job", ae.Kind)
			}
			if !strings.Contains(ae.Error, tc.want) {
				t.Errorf("error %q does not mention %q", ae.Error, tc.want)
			}
		})
	}

	// The enumeration errors list the legal values — the "loud" half
	// of the contract.
	code, _, body := postJob(t, srv, `{"Workload":"nope"}`, false)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d", code)
	}
	for _, name := range experiments.WorkloadNames() {
		if !strings.Contains(string(body), name) {
			t.Errorf("unknown-workload error does not list %q: %s", name, body)
		}
	}

	// Unknown job IDs are 404s with Kind not-found on every job route.
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/events"} {
		code, _, body := getBody(t, srv, path)
		if code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404: %s", path, code, body)
		}
	}

	// Health answers.
	code, _, _ = getBody(t, srv, "/v1/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
}

// TestCanonicalHashStability pins the normalization contract the
// result cache rests on: two submissions meaning the same run hash
// identically, and any parameter that changes the result changes the
// hash.
func TestCanonicalHashStability(t *testing.T) {
	hash := func(t *testing.T, body string) string {
		t.Helper()
		j, err := DecodeJob([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		w, _, err := j.normalize(0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := experiments.CanonicalHash(w)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	// Defaults spelled out vs omitted: same canonical work.
	implicit := hash(t, `{"Workload":"OLTP-St","Scheme":"dma-ta"}`)
	explicit := hash(t, `{"Tenant":"acme","Workload":"OLTP-St","Scheme":"dma-ta","CPLimit":0.10,"DurationMs":4,"DbDurationMs":2,"Seed":1}`)
	if implicit != explicit {
		t.Errorf("equivalent jobs hash differently: %s vs %s", implicit, explicit)
	}
	// The tenant never participates in the hash (implicit above has no
	// tenant, explicit does) but every simulation parameter must.
	for _, variant := range []string{
		`{"Workload":"OLTP-St","Scheme":"dma-ta","CPLimit":0.2}`,
		`{"Workload":"OLTP-St","Scheme":"dma-ta-pl"}`,
		`{"Workload":"Synthetic-St","Scheme":"dma-ta"}`,
		`{"Workload":"OLTP-St","Scheme":"dma-ta","Seed":2}`,
		`{"Workload":"OLTP-St","Scheme":"dma-ta","Workers":4}`,
		`{"Workload":"OLTP-St","Scheme":"dma-ta","Tech":"ddr4-2400"}`,
	} {
		if h := hash(t, variant); h == implicit {
			t.Errorf("variant %s hashes like the base job", variant)
		}
	}
}
