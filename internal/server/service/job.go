// Package service is the simulation-as-a-service layer: a
// long-running HTTP/JSON daemon (cmd/dmamem-serve) that accepts
// validated Simulation/GridSpec job submissions from tenants,
// schedules them on a bounded worker fleet with admission control and
// per-tenant weighted fair queueing, optionally fans grid points out
// to TCP shard workers through the experiments.Coordinator, caches
// completed results keyed by a canonical config hash, and streams
// per-job progress events.
//
// Results are bit-stable: a report job's response is the golden-corpus
// serialization of its metrics.Report (byte-identical to
// internal/experiments/testdata/golden/ for the default suite), and a
// grid job's points are exactly the bytes a shard worker would
// stream, so in-process and coordinator-backed execution agree byte
// for byte. That stability is what makes the result cache sound: two
// submissions that normalize to the same canonical spec share one
// answer.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dmamem"
	"dmamem/internal/experiments"
	"dmamem/internal/sim"
)

// SchemaVersion is the job schema this daemon speaks. Submissions may
// omit Version (0 means "current"); any other value is rejected
// loudly so a mixed-version fleet fails fast instead of silently
// reinterpreting fields.
const SchemaVersion = 1

// MaxJobBytes bounds one submission body; larger bodies are rejected
// before decoding rather than honored with a giant allocation.
const MaxJobBytes = 1 << 20

// ErrBadJob tags submissions the decoder or validator rejected:
// malformed JSON, unknown fields, version skew, enumeration
// violations. Handlers map it to HTTP 400.
var ErrBadJob = errors.New("service: bad job")

// Job is one tenant submission. Exactly one of Workload (a report
// job: one Table 2 workload under one scheme, returning the full
// report) or Grid (a sweep job: a named experiments grid, returning
// its points) must be set. Every other field is defaultable — the
// zero value selects the golden-corpus default — and out-of-range
// values error loudly at submission, reusing Simulation.Validate and
// the grid resolver for the enumerations.
type Job struct {
	// Version of the job schema; 0 means SchemaVersion.
	Version int `json:",omitempty"`
	// Tenant is the submitting tenant's identity for fair queueing and
	// admission control. Empty means "default".
	Tenant string `json:",omitempty"`
	// Workload names a Table 2 trace ("OLTP-St", "Synthetic-St",
	// "OLTP-Db", "Synthetic-Db") for a report job.
	Workload string `json:",omitempty"`
	// Scheme is the energy-management scheme of a report job:
	// "baseline", "dma-ta" or "dma-ta-pl". Empty means "baseline".
	Scheme string `json:",omitempty"`
	// CPLimit is the DMA-TA degradation bound; 0 selects the paper's
	// 0.10 for the alignment schemes.
	CPLimit float64 `json:",omitempty"`
	// PLGroups is the PL popularity group count; 0 selects 2.
	PLGroups int `json:",omitempty"`
	// Tech selects the memory-technology backend by registry name;
	// empty keeps the RDRAM default.
	Tech string `json:",omitempty"`
	// Workers selects the parallel barrier engine inside the
	// simulation (0 = serial reference; results are bit-identical at
	// any count).
	Workers int `json:",omitempty"`
	// DurationMs is the generated trace duration in simulated
	// milliseconds; 0 selects the golden suite's 4 ms.
	DurationMs float64 `json:",omitempty"`
	// DbDurationMs is the duration for the denser database traces;
	// 0 selects the golden suite's 2 ms.
	DbDurationMs float64 `json:",omitempty"`
	// Seed for the trace generators; 0 selects the golden suite's 1.
	Seed uint64 `json:",omitempty"`
	// Grid submits a sweep job instead: a named experiments grid
	// (fig5, fig8, fig9, fig10, noop) with its parameters. The suite
	// fields above (DurationMs, DbDurationMs, Seed) configure the
	// traces the grid runs over.
	Grid *experiments.GridSpec `json:",omitempty"`
}

// DecodeJob parses one submission body. It never panics on arbitrary
// input: truncated bodies, unknown fields, non-JSON bytes, NaN/Inf
// float tokens and trailing garbage are all loud ErrBadJob errors,
// mirroring the .dmt container decoder's contract (FuzzDMTDecode).
func DecodeJob(data []byte) (Job, error) {
	var j Job
	if len(data) > MaxJobBytes {
		return j, fmt.Errorf("%w: body %d bytes exceeds the %d-byte limit", ErrBadJob, len(data), MaxJobBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		if errors.Is(err, io.EOF) {
			return Job{}, fmt.Errorf("%w: empty body", ErrBadJob)
		}
		return Job{}, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Job{}, fmt.Errorf("%w: trailing data after the job object", ErrBadJob)
	}
	return j, nil
}

// work is the canonical, tenant-independent execution spec of a
// normalized job — the value whose canonical hash keys the result
// cache. Exactly one field is set.
type work struct {
	Report *experiments.ReportSpec `json:",omitempty"`
	Grid   *gridWork               `json:",omitempty"`
}

// gridWork pairs a grid with the suite it resolves against, plus the
// engine workers knob for the in-process path.
type gridWork struct {
	Suite   experiments.SuiteSpec
	Grid    experiments.GridSpec
	Workers int `json:",omitempty"`
}

// msToSim converts simulated milliseconds to sim.Duration
// (picoseconds), rejecting NaN/Inf and negatives.
func msToSim(name string, ms float64) (sim.Duration, error) {
	if math.IsNaN(ms) || math.IsInf(ms, 0) {
		return 0, fmt.Errorf("%w: %s is not a finite number", ErrBadJob, name)
	}
	if ms < 0 {
		return 0, fmt.Errorf("%w: negative %s %v", ErrBadJob, name, ms)
	}
	const maxMs = 60_000 // one simulated minute bounds a single job
	if ms > maxMs {
		return 0, fmt.Errorf("%w: %s %v exceeds the %d ms service bound", ErrBadJob, name, ms, maxMs)
	}
	return sim.Duration(math.Round(ms * float64(sim.Millisecond))), nil
}

// suiteSpec builds the SuiteSpec of a job's trace configuration with
// golden-corpus defaults.
func (j Job) suiteSpec() (experiments.SuiteSpec, error) {
	var sp experiments.SuiteSpec
	var err error
	if sp.Duration, err = msToSim("DurationMs", j.DurationMs); err != nil {
		return sp, err
	}
	if sp.DbDuration, err = msToSim("DbDurationMs", j.DbDurationMs); err != nil {
		return sp, err
	}
	if sp.Duration == 0 {
		sp.Duration = 4 * sim.Millisecond
	}
	if sp.DbDuration == 0 {
		sp.DbDuration = 2 * sim.Millisecond
	}
	sp.Seed = j.Seed
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp, nil
}

// simTechnique maps a normalized scheme name onto the public API's
// technique enumeration for Simulation.Validate.
func simTechnique(scheme string) dmamem.Technique {
	switch scheme {
	case "dma-ta":
		return dmamem.TemporalAlignment
	case "dma-ta-pl":
		return dmamem.TemporalAlignmentWithLayout
	}
	return dmamem.Baseline
}

// normalize validates a submission and returns its canonical work
// spec plus the grid point count (0 for report jobs). All enumeration
// errors are loud and reuse the library's own validators:
// Simulation.Validate for report parameters, the experiments grid
// resolver for grid names and technologies.
func (j Job) normalize(maxGridPoints int) (work, int, error) {
	if j.Version != 0 && j.Version != SchemaVersion {
		return work{}, 0, fmt.Errorf("%w: job schema version %d, want %d (or omit it)", ErrBadJob, j.Version, SchemaVersion)
	}
	if math.IsNaN(j.CPLimit) || math.IsInf(j.CPLimit, 0) {
		return work{}, 0, fmt.Errorf("%w: CPLimit is not a finite number", ErrBadJob)
	}
	switch {
	case j.Workload == "" && j.Grid == nil:
		return work{}, 0, fmt.Errorf("%w: set either Workload (a report job) or Grid (a sweep job)", ErrBadJob)
	case j.Workload != "" && j.Grid != nil:
		return work{}, 0, fmt.Errorf("%w: both Workload %q and Grid %q set; submit one job per kind", ErrBadJob, j.Workload, j.Grid.Name)
	}
	suite, err := j.suiteSpec()
	if err != nil {
		return work{}, 0, err
	}
	if j.Grid != nil {
		gw := &gridWork{Suite: suite, Grid: *j.Grid, Workers: j.Workers}
		if j.Workers < 0 {
			return work{}, 0, fmt.Errorf("%w: negative Workers %d; 0 selects the serial engine", ErrBadJob, j.Workers)
		}
		n, err := experiments.ValidateGrid(gw.Suite, gw.Grid)
		if err != nil {
			return work{}, 0, fmt.Errorf("%w: %v", ErrBadJob, err)
		}
		if n <= 0 {
			return work{}, 0, fmt.Errorf("%w: grid %q resolves to %d points; set its sweep parameters", ErrBadJob, gw.Grid.Name, n)
		}
		if maxGridPoints > 0 && n > maxGridPoints {
			return work{}, 0, fmt.Errorf("%w: grid %q resolves to %d points, over the service bound %d", ErrBadJob, gw.Grid.Name, n, maxGridPoints)
		}
		return work{Grid: gw}, n, nil
	}
	rs := experiments.ReportSpec{
		Suite:    suite,
		Workload: j.Workload,
		Scheme:   j.Scheme,
		CPLimit:  j.CPLimit,
		PLGroups: j.PLGroups,
		Tech:     j.Tech,
		Workers:  j.Workers,
	}
	rs, err = rs.Normalize()
	if err != nil {
		return work{}, 0, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	// The public API contract is the final word on the technique
	// parameters: re-validate the normalized spec through
	// Simulation.Validate so the daemon can never accept a job the
	// library would reject.
	s := dmamem.Simulation{
		Technique:  simTechnique(rs.Scheme),
		CPLimit:    rs.CPLimit,
		PLGroups:   rs.PLGroups,
		MemoryTech: rs.Tech,
		Workers:    rs.Workers,
	}
	if err := s.Validate(); err != nil {
		return work{}, 0, fmt.Errorf("%w: %v", ErrBadJob, err)
	}
	return work{Report: &rs}, 0, nil
}
