package service

import "testing"

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	c.put("a", []byte("ra"))
	c.put("b", []byte("rb"))
	if got := c.len(); got != 2 {
		t.Fatalf("len = %d, want 2", got)
	}
	// Refresh a, insert c: b is the least recently used and must go.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.put("c", []byte("rc"))
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction past the bound")
	}
	if got, ok := c.get("a"); !ok || string(got) != "ra" {
		t.Errorf("a = %q, %v after eviction", got, ok)
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d after eviction, want 2", got)
	}
	// Re-putting an existing key updates in place without growing.
	c.put("a", []byte("ra2"))
	if got, _ := c.get("a"); string(got) != "ra2" {
		t.Errorf("a = %q after overwrite, want ra2", got)
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d after overwrite, want 2", got)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(0)
	c.put("a", []byte("ra"))
	if _, ok := c.get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if got := c.len(); got != 0 {
		t.Errorf("len = %d, want 0", got)
	}
}
