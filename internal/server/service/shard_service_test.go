package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"dmamem/internal/experiments"
)

// hungListener accepts connections and never answers — the
// pathological TCP shard worker: the dial succeeds, the request
// frame writes, and then nothing ever comes back.
func hungListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() { ln.Close(); <-done })
	go func() {
		defer close(done)
		var conns []net.Conn
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			conns = append(conns, c) // hold it open, never respond
		}
	}()
	return ln.Addr().String()
}

// goodShardWorker serves real shard sessions on a loopback listener.
func goodShardWorker(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	t.Cleanup(func() {
		cancel()
		ln.Close()
		<-done
	})
	go func() {
		defer close(done)
		experiments.ServeShards(ctx, ln, nil)
	}()
	return ln.Addr().String()
}

// TestShardFailoverKeepsTenantsIsolated is the regression test for
// the daemon's sharded grid path: one of the two TCP workers hangs
// mid-slice, the coordinator times the slice out and retries it on
// the healthy worker, the sharded tenant's job completes with the
// correct result — and another tenant's in-flight job on the same
// daemon is untouched throughout.
func TestShardFailoverKeepsTenantsIsolated(t *testing.T) {
	hung := hungListener(t)
	good := goodShardWorker(t)
	d := New(Config{
		Workers:      2,
		ShardAddrs:   []string{hung, good},
		Shards:       2,
		ShardTimeout: 2 * time.Second,
	})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Tenant B's report job runs in-process, concurrent with tenant
	// A's sharded sweep and its failover.
	stB, err := d.Submit(Job{Tenant: "bystander", Workload: "Synthetic-St"})
	if err != nil {
		t.Fatal(err)
	}
	stA, err := d.Submit(noopJob("sharded", 6))
	if err != nil {
		t.Fatal(err)
	}

	finalA, err := d.Wait(ctx, stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finalA.Status != StatusDone {
		t.Fatalf("sharded job finished %q: %s", finalA.Status, finalA.Error)
	}
	resultA, _, _ := d.Result(stA.ID)
	var pts []json.RawMessage
	if err := json.Unmarshal(resultA, &pts); err != nil || len(pts) != 6 {
		t.Fatalf("sharded result: %d points, err %v", len(pts), err)
	}
	// The failed-over result is byte-identical to an in-process run of
	// the same grid.
	s := experiments.NewSuiteFromSpec(experiments.SuiteSpec{})
	raw, err := experiments.GridRunRaw(ctx, s, experiments.GridSpec{Name: "noop", Points: 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.CanonicalJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultA, want) {
		t.Error("failed-over sharded result differs from the in-process run")
	}

	// The bystander's job is intact and bit-exact.
	finalB, err := d.Wait(ctx, stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finalB.Status != StatusDone {
		t.Fatalf("bystander job finished %q: %s", finalB.Status, finalB.Error)
	}
	resultB, _, _ := d.Result(stB.ID)
	want = goldenBytes(t, "synthetic-st_baseline.json")
	if !bytes.Equal(resultB, want) {
		t.Error("bystander report drifted from the golden corpus during the failover")
	}
}

// TestShardFailureNamesTenantAndJob pins the error contract of the
// sharded path: when every worker is unreachable and retries are
// exhausted, the job fails with an error naming the job ID, the
// tenant, and the coordinator's shard/point range — enough to tell
// whose sweep died and where without grepping worker logs.
func TestShardFailureNamesTenantAndJob(t *testing.T) {
	hung := hungListener(t)
	d := New(Config{
		Workers:      1,
		ShardAddrs:   []string{hung},
		Shards:       1,
		ShardTimeout: 500 * time.Millisecond,
		ShardRetries: -1, // fail fast: no retries, every address hangs anyway
	})
	defer d.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := d.Submit(noopJob("acme", 4))
	if err != nil {
		t.Fatal(err)
	}
	final, err := d.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != StatusFailed {
		t.Fatalf("job finished %q, want failed", final.Status)
	}
	for _, want := range []string{
		"job " + st.ID,
		"(tenant acme)",
		"shard 0/1 (points 0..3)",
	} {
		if !strings.Contains(final.Error, want) {
			t.Errorf("failure %q does not contain %q", final.Error, want)
		}
	}
	if got := d.Counters().Get("jobs_failed"); got != 1 {
		t.Errorf("jobs_failed = %d, want 1", got)
	}
}
