package service

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"dmamem/internal/experiments"
)

// FuzzJobDecode feeds arbitrary bytes to the job decoder and
// validator — the daemon's entire public attack surface. Whatever a
// tenant posts, the pipeline must fail with an error wrapping
// ErrBadJob, never panic, and never admit a job the validators would
// reject (mirroring the .dmt container decoder's FuzzDMTDecode
// contract). Jobs that do decode must survive a marshal/decode round
// trip unchanged, and normalization must be deterministic: the same
// body always produces the same canonical hash.
func FuzzJobDecode(f *testing.F) {
	// The worked example from docs/SERVICE.md plus each job kind.
	f.Add([]byte(`{"Workload":"OLTP-St"}`))
	f.Add([]byte(`{"Tenant":"acme","Workload":"Synthetic-St","Scheme":"dma-ta-pl","CPLimit":0.15,"PLGroups":4,"Workers":4}`))
	f.Add([]byte(`{"Grid":{"Name":"fig10","Workloads":["Synthetic-St"],"BusBW":[1.064e9],"Channels":[1,2,4]}}`))
	f.Add([]byte(`{"Grid":{"Name":"noop","Points":3}}`))
	// Malformed shapes: truncations, unknown fields, trailing bytes.
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"Workload":"OLTP-St"`))
	f.Add([]byte(`{"Wrokload":"OLTP-St"}`))
	f.Add([]byte(`{"Workload":"OLTP-St"}{"Workload":"OLTP-St"}`))
	f.Add([]byte(`[{"Workload":"OLTP-St"}]`))
	f.Add([]byte(`not json at all`))
	// Hostile numbers: overflow to Inf, NaN spellings, negatives.
	f.Add([]byte(`{"Workload":"OLTP-St","CPLimit":1e999}`))
	f.Add([]byte(`{"Workload":"OLTP-St","CPLimit":NaN}`))
	f.Add([]byte(`{"Workload":"OLTP-St","DurationMs":-1}`))
	f.Add([]byte(`{"Workload":"OLTP-St","DurationMs":1e300}`))
	f.Add([]byte(`{"Workload":"OLTP-St","Workers":-3}`))
	f.Add([]byte(`{"Grid":{"Name":"noop","Points":-5}}`))
	f.Add([]byte(`{"Grid":{"Name":"noop","Points":99999999}}`))
	// Version skew and enumeration misses.
	f.Add([]byte(`{"Version":2,"Workload":"OLTP-St"}`))
	f.Add([]byte(`{"Version":-1,"Workload":"OLTP-St"}`))
	f.Add([]byte(`{"Workload":"oltp-st"}`))
	f.Add([]byte(`{"Workload":"OLTP-St","Scheme":"DMA-TA"}`))
	f.Add([]byte(`{"Workload":"OLTP-St","Tech":"sram-9000"}`))
	f.Add([]byte(`{"Grid":{"Name":"fig11"}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJob(data)
		if err != nil {
			if !errors.Is(err, ErrBadJob) {
				t.Fatalf("decode error does not wrap ErrBadJob: %v", err)
			}
			if !reflect.DeepEqual(j, Job{}) {
				t.Fatalf("decoder returned both a job and an error: %+v, %v", j, err)
			}
			return // rejection is the expected outcome for random bytes
		}
		// Round-trip identity: what decoded must re-encode and decode
		// back to the same job.
		b, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("re-encoding a decoded job: %v", err)
		}
		j2, err := DecodeJob(b)
		if err != nil {
			t.Fatalf("re-decoding %s: %v", b, err)
		}
		if !reflect.DeepEqual(j, j2) {
			t.Fatalf("round trip changed the job: %+v -> %+v", j, j2)
		}
		// Validation must classify, never panic; admitted jobs must
		// normalize deterministically.
		w1, n1, err := j.normalize(4096)
		if err != nil {
			if !errors.Is(err, ErrBadJob) {
				t.Fatalf("normalize error does not wrap ErrBadJob: %v", err)
			}
			return
		}
		if n1 < 0 {
			t.Fatalf("normalize admitted a negative point count %d", n1)
		}
		h1, err := experiments.CanonicalHash(w1)
		if err != nil {
			t.Fatalf("hashing a normalized job: %v", err)
		}
		w2, n2, err := j.normalize(4096)
		if err != nil {
			t.Fatalf("second normalization of an admitted job failed: %v", err)
		}
		h2, err := experiments.CanonicalHash(w2)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 || n1 != n2 {
			t.Fatalf("normalization is not deterministic: %s/%d vs %s/%d", h1, n1, h2, n2)
		}
		// The tenant must never leak into the canonical spec: the same
		// job under another tenant shares the cache key.
		jt := j
		jt.Tenant = "other-" + j.Tenant
		wt, _, err := jt.normalize(4096)
		if err != nil {
			t.Fatalf("tenant rename broke validation: %v", err)
		}
		ht, err := experiments.CanonicalHash(wt)
		if err != nil {
			t.Fatal(err)
		}
		if ht != h1 {
			t.Fatalf("tenant identity leaked into the canonical hash: %s vs %s", ht, h1)
		}
	})
}
