package server

import (
	"testing"

	"dmamem/internal/sim"
	"dmamem/internal/trace"
)

func shortDSS() DSSConfig {
	c := DefaultDSS()
	c.Duration = 40 * sim.Millisecond
	return c
}

func TestGenerateDSSShape(t *testing.T) {
	res, err := GenerateDSS(shortDSS())
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(tr)
	// Scan traffic dominates: far more disk DMAs than network results.
	if st.DiskTransfers < 10*st.NetTransfers {
		t.Fatalf("disk %d vs net %d: scans should dominate", st.DiskTransfers, st.NetTransfers)
	}
	// Transfers are large read-ahead units (8 pages).
	if st.MeanTransferPages() < 6 {
		t.Fatalf("mean transfer = %.1f pages, want large units", st.MeanTransferPages())
	}
	if st.ProcAccesses != 0 {
		t.Fatal("DSS model emits no processor accesses")
	}
	if res.Queries == 0 || res.MeanResp <= 0 {
		t.Fatalf("queries=%d resp=%v", res.Queries, res.MeanResp)
	}
	// DSS queries take many milliseconds (streaming a multi-MB scan).
	if res.MeanResp < sim.Duration(2*sim.Millisecond) {
		t.Fatalf("mean response %v implausibly fast for a scan", res.MeanResp)
	}
}

func TestGenerateDSSSequentialFrames(t *testing.T) {
	res, err := GenerateDSS(shortDSS())
	if err != nil {
		t.Fatal(err)
	}
	// Records stay within memory.
	frames := DefaultDSS().Frames
	for _, r := range res.Trace.Records {
		if int(r.Page)+int(r.Pages) > frames {
			t.Fatalf("record outside memory: %+v", r)
		}
	}
}

func TestGenerateDSSDeterminism(t *testing.T) {
	cfg := shortDSS()
	cfg.Duration = 20 * sim.Millisecond
	a, err := GenerateDSS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDSS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Records) != len(b.Trace.Records) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Trace.Records {
		if a.Trace.Records[i] != b.Trace.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGenerateDSSValidation(t *testing.T) {
	bad := DefaultDSS()
	bad.QueryRatePerMs = 0
	if _, err := GenerateDSS(bad); err == nil {
		t.Error("zero rate accepted")
	}
	bad = DefaultDSS()
	bad.TransferPages = bad.ScanPages + 1
	if _, err := GenerateDSS(bad); err == nil {
		t.Error("oversized transfer unit accepted")
	}
	bad = DefaultDSS()
	bad.Frames = 10
	if _, err := GenerateDSS(bad); err == nil {
		t.Error("scan larger than memory accepted")
	}
	bad = DefaultDSS()
	bad.ResultFraction = 2
	if _, err := GenerateDSS(bad); err == nil {
		t.Error("bad result fraction accepted")
	}
}
